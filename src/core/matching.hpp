// Message matching: the posted-receive queue and the unexpected-message
// buffer (LAM's internal hash table, paper §2.2.2). Shared by both RPIs —
// the transports differ in how bytes arrive, not in MPI matching
// semantics.
#pragma once

#include <deque>
#include <optional>
#include <vector>

#include "core/envelope.hpp"
#include "core/request.hpp"
#include "net/slice.hpp"

namespace sctpmpi::core {

/// A message that arrived before a matching receive was posted. For eager
/// (short) messages the body is buffered as retained slices (SCTP: straight
/// off the reassembled chain; TCP: the adopted staging vector); for long
/// messages only the rendezvous envelope is held until a receive triggers
/// the ACK.
struct UnexpectedMsg {
  Envelope env;
  net::SliceChain body;
};

class MatchEngine {
 public:
  /// Finds and removes the oldest posted receive matching `env`
  /// (program-posting order, as MPI requires); nullptr if none.
  RpiRequest* match_posted(const Envelope& env) {
    for (auto it = posted_.begin(); it != posted_.end(); ++it) {
      if ((*it)->matches(env)) {
        RpiRequest* req = *it;
        posted_.erase(it);
        return req;
      }
    }
    return nullptr;
  }

  /// Checks a newly posted receive against buffered unexpected messages
  /// (oldest first); removes and returns the match.
  std::optional<UnexpectedMsg> match_unexpected(const RpiRequest& req) {
    for (auto it = unexpected_.begin(); it != unexpected_.end(); ++it) {
      if (req.matches(it->env)) {
        UnexpectedMsg m = std::move(*it);
        unexpected_.erase(it);
        return m;
      }
    }
    return std::nullopt;
  }

  /// Non-destructive scan for MPI_Probe/Iprobe.
  const Envelope* peek_unexpected(std::uint32_t context, int src,
                                  int tag) const {
    for (const auto& m : unexpected_) {
      RpiRequest probe;
      probe.context = context;
      probe.peer = src;
      probe.tag = tag;
      if (probe.matches(m.env)) return &m.env;
    }
    return nullptr;
  }

  void add_posted(RpiRequest* req) { posted_.push_back(req); }
  /// Re-inserts a receive at the FRONT of the posted queue: used by the
  /// recovery path when a teardown interrupts a partially received message
  /// whose matched receive must win the re-match against later-posted
  /// receives of the same TRC (MPI ordering).
  void add_posted_front(RpiRequest* req) { posted_.push_front(req); }
  void remove_posted(RpiRequest* req) {
    for (auto it = posted_.begin(); it != posted_.end(); ++it) {
      if (*it == req) {
        posted_.erase(it);
        return;
      }
    }
  }
  void add_unexpected(UnexpectedMsg&& m) {
    unexpected_.push_back(std::move(m));
  }

  std::size_t posted_count() const { return posted_.size(); }
  std::size_t unexpected_count() const { return unexpected_.size(); }

 private:
  std::deque<RpiRequest*> posted_;
  std::deque<UnexpectedMsg> unexpected_;
};

}  // namespace sctpmpi::core
