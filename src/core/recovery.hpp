// Per-peer recovery state shared by both RPI modules: the retained-send
// queue that makes replay possible, and the delivered-sequence set that
// makes replay safe (exactly-once delivery to the matching layer).
//
// The RPI sequence space is dense per (sender, peer) — start_send assigns
// 1, 2, 3, ... — so the receiver's delivered set collapses to a handful of
// net::SeqRuns runs and the contiguous prefix ("cum") is the natural
// replay-trim point, exactly like a transport cumulative ack one layer up.
#pragma once

#include <cstdint>
#include <deque>

#include "net/buffer.hpp"
#include "net/seq_ranges.hpp"

namespace sctpmpi::core {

/// One retained reference to a data-bearing message (eager, ssend or long).
/// Header and body are ref-counted Buffers shared with the request and the
/// output queue, so retaining a message is a refcount bump, not a copy, and
/// trimming the queue cannot pull a body out from under a partially written
/// replay job. `body` is empty for a long message retained before its
/// rendezvous body was enqueued (`is_long` tells the replay path apart from
/// a zero-length eager message).
struct RetainedMsg {
  std::uint32_t seq = 0;
  std::uint16_t flags = 0;
  net::Buffer header;  // encoded envelope
  net::Buffer body;
  bool is_long = false;
};

/// Send- and receive-side recovery bookkeeping toward one peer.
struct PeerReplay {
  // ---- send side ---------------------------------------------------------
  /// Copies of data messages not yet covered by the peer's replay ack,
  /// in ascending seq order (seqs are assigned monotonically).
  std::deque<RetainedMsg> retained;
  /// Highest contiguous seq the peer confirmed delivered (kFlagReplayAck).
  std::uint32_t acked_cum = 0;

  // ---- receive side ------------------------------------------------------
  /// Seqs whose payload was fully received (delivered or buffered
  /// unexpected). Duplicates arriving through replay are dropped here.
  net::SeqRuns delivered;
  /// Contiguous delivered prefix; advertised back in replay acks.
  std::uint32_t delivered_cum = 0;
  std::uint32_t msgs_since_ack = 0;
  /// Long-message envelopes seen (rendezvous request received and matched
  /// or buffered) but whose body has not yet completed. A replayed long
  /// envelope in this set is a duplicate even though `delivered` does not
  /// cover it yet.
  net::SeqRuns long_seen;

  // ---- reconnection ------------------------------------------------------
  bool down = false;       // endpoint currently torn down
  bool dead = false;       // reconnection given up; peer declared failed
  unsigned attempts = 0;   // reconnect attempts since last success

  void note_delivered(std::uint32_t seq) {
    delivered.insert(seq, seq + 1);
    while (delivered.contains(delivered_cum + 1)) ++delivered_cum;
    ++msgs_since_ack;
  }

  bool was_delivered(std::uint32_t seq) const {
    return delivered.contains(seq);
  }

  void retain(RetainedMsg&& m) { retained.push_back(std::move(m)); }

  /// Drops retained copies covered by the peer's cumulative replay ack.
  void trim(std::uint32_t cum) {
    if (net::seq_gt(cum, acked_cum)) acked_cum = cum;
    while (!retained.empty() &&
           net::seq_leq(retained.front().seq, acked_cum)) {
      retained.pop_front();
    }
  }
};

}  // namespace sctpmpi::core
