// Rank-failure event distribution: the bridge between failure detectors
// (the lamd master's liveness tracking, a local RPI giving up on a peer)
// and the running MPI job. Detectors push events in; each rank polls its
// own queue through the Mpi facade (poll_rank_failure / waitany_or_failure)
// and is woken from a transport block when an event lands.
//
// This stands in for LAM's out-of-band abort/cleanup broadcast: the master
// daemon's dead-node verdict reaches every surviving rank. The dead rank
// itself is excluded from daemon-sourced announcements — a blacked-out
// node cannot hear a broadcast; it learns of its isolation from its own
// RPI declaring the manager unreachable.
#pragma once

#include <deque>
#include <vector>

#include "sim/process.hpp"

namespace sctpmpi::core {

class FailureBus {
 public:
  explicit FailureBus(int ranks)
      : subs_(static_cast<std::size_t>(ranks)) {}

  /// Registers the rank's process so announcements can wake it from an
  /// RPI block. Events queued before attach are kept.
  void attach(int rank, sim::Process* proc) {
    subs_[static_cast<std::size_t>(rank)].proc = proc;
  }
  void detach(int rank) {
    subs_[static_cast<std::size_t>(rank)].proc = nullptr;
  }

  /// Announces `about` to every rank except `except` (the dead rank —
  /// it cannot hear the daemon's broadcast).
  void announce(int about, int except = -1) {
    for (int r = 0; r < static_cast<int>(subs_.size()); ++r) {
      if (r != except && r != about) announce_to(r, about);
    }
  }

  /// Announces `about` to one rank (local RPI detection). Duplicate
  /// announcements about the same rank are collapsed.
  void announce_to(int rank, int about) {
    Sub& s = subs_[static_cast<std::size_t>(rank)];
    for (int seen : s.seen) {
      if (seen == about) return;
    }
    s.seen.push_back(about);
    s.q.push_back(about);
    if (s.proc != nullptr) s.proc->wake();
  }

  /// Next failed rank queued for `rank`, or -1.
  int poll(int rank) {
    Sub& s = subs_[static_cast<std::size_t>(rank)];
    if (s.q.empty()) return -1;
    const int about = s.q.front();
    s.q.pop_front();
    return about;
  }

 private:
  struct Sub {
    sim::Process* proc = nullptr;
    std::deque<int> q;
    std::vector<int> seen;  // ranks already announced to this subscriber
  };
  std::vector<Sub> subs_;
};

}  // namespace sctpmpi::core
