#include "core/lamd.hpp"

#include <cassert>

#include "net/bytes.hpp"

namespace sctpmpi::core {

LamDaemon::LamDaemon(net::Host& host, int node, int nodes, LamdConfig cfg,
                     std::function<net::IpAddr(int)> peer_addr,
                     sctp::SctpStack* sctp_stack, net::UdpStack* udp_stack)
    : host_(host),
      node_(node),
      nodes_(nodes),
      cfg_(cfg),
      peer_addr_(std::move(peer_addr)),
      sctp_stack_(sctp_stack),
      udp_stack_(udp_stack),
      status_timer_(host.sim(), [this] { on_status_timer_(); }),
      last_seen_(static_cast<std::size_t>(nodes), 0),
      comm_lost_(static_cast<std::size_t>(nodes), false),
      reported_dead_(static_cast<std::size_t>(nodes), false) {
  if (cfg_.transport == CtlTransport::kSctp) {
    assert(sctp_stack_ != nullptr);
    sctp_sock_ = sctp_stack_->create_socket(cfg_.port);
    sctp_sock_->listen();
    sctp_sock_->set_activity_callback([this] { pump_sctp_(); });
    node_assoc_.assign(static_cast<std::size_t>(nodes_), 0);
  } else {
    assert(udp_stack_ != nullptr);
    udp_sock_ = udp_stack_->create_socket(cfg_.port);
    udp_sock_->set_activity_callback([this] { pump_udp_(); });
  }
}

LamDaemon::~LamDaemon() = default;

void LamDaemon::start() {
  start_time_ = host_.sim().now();
  if (cfg_.transport == CtlTransport::kSctp && !is_master()) {
    // Slaves open the control association to the master.
    node_assoc_[0] = sctp_sock_->connect(peer_addr_(0), cfg_.port);
    assoc_node_[node_assoc_[0]] = 0;
  }
  status_timer_.arm(cfg_.status_interval);
}

void LamDaemon::send_ctl_(int dst_node, MsgType type) {
  std::vector<std::byte> msg;
  net::ByteWriter w(msg);
  w.u8(type);
  w.u32(static_cast<std::uint32_t>(node_));
  if (cfg_.transport == CtlTransport::kSctp) {
    const sctp::AssocId id = node_assoc_[static_cast<std::size_t>(dst_node)];
    if (id != 0) (void)sctp_sock_->sendmsg(id, /*sid=*/0, msg);
  } else {
    udp_sock_->sendto(peer_addr_(dst_node), cfg_.port, msg);
  }
}

void LamDaemon::on_ctl_(int from_node, MsgType type) {
  switch (type) {
    case kStatus:
      ++stats_.status_received;
      if (is_master() && from_node >= 0 && from_node < nodes_) {
        last_seen_[static_cast<std::size_t>(from_node)] = host_.sim().now();
      }
      break;
    case kAbort:
      stats_.abort_received = true;
      break;
  }
}

void LamDaemon::on_status_timer_() {
  if (!is_master()) {
    send_ctl_(0, kStatus);
    ++stats_.status_sent;
  } else {
    check_transitions_();
  }
  status_timer_.arm(cfg_.status_interval);
}

void LamDaemon::check_transitions_() {
  for (int node = 0; node < nodes_; ++node) {
    if (node == node_) continue;
    const bool alive = is_alive(node);
    const bool reported = reported_dead_[static_cast<std::size_t>(node)];
    if (!alive && !reported) {
      reported_dead_[static_cast<std::size_t>(node)] = true;
      if (on_node_dead_) on_node_dead_(node);
    } else if (alive && reported) {
      reported_dead_[static_cast<std::size_t>(node)] = false;  // revived
    }
  }
}

void LamDaemon::pump_sctp_() {
  // Map newly established associations to nodes (master side).
  while (auto n = sctp_sock_->poll_notification()) {
    if (n->type == sctp::NotificationType::kCommUp) {
      const sctp::Association* a = sctp_sock_->assoc(n->assoc);
      if (a != nullptr && !a->paths().empty()) {
        const int node = static_cast<int>(net::host_of(a->paths()[0].addr));
        if (node >= 0 && node < nodes_) {
          node_assoc_[static_cast<std::size_t>(node)] = n->assoc;
          assoc_node_[n->assoc] = node;
          // A fresh association from a node previously reported lost means
          // it restarted/reconnected: clear the sticky loss flag.
          comm_lost_[static_cast<std::size_t>(node)] = false;
        }
      }
    } else if (n->type == sctp::NotificationType::kCommLost) {
      // SCTP's failure notification (paper §3.5): the master learns of a
      // dead node without waiting for ping timeouts.
      auto it = assoc_node_.find(n->assoc);
      if (it != assoc_node_.end()) {
        comm_lost_[static_cast<std::size_t>(it->second)] = true;
        if (is_master()) check_transitions_();
      }
    }
  }
  std::vector<std::byte> buf(1024);
  sctp::RecvInfo info;
  while (true) {
    const auto n = sctp_sock_->recvmsg(buf, info);
    if (n < 1) break;
    net::ByteReader r(std::span<const std::byte>(buf.data(), static_cast<std::size_t>(n)));
    const auto type = static_cast<MsgType>(r.u8());
    const int from = static_cast<int>(r.u32());
    on_ctl_(from, type);
  }
}

void LamDaemon::pump_udp_() {
  net::Datagram dg;
  while (udp_sock_->recvfrom(dg)) {
    if (dg.data.size() < 5) continue;
    net::ByteReader r(dg.data);
    const auto type = static_cast<MsgType>(r.u8());
    const int from = static_cast<int>(r.u32());
    on_ctl_(from, type);
  }
}

bool LamDaemon::is_alive(int node) const {
  if (node == node_) return true;
  if (cfg_.transport == CtlTransport::kSctp &&
      comm_lost_[static_cast<std::size_t>(node)]) {
    return false;
  }
  const sim::SimTime seen = last_seen_[static_cast<std::size_t>(node)];
  if (seen == 0) {
    // Never heard from: grace period of dead_after from start(). The old
    // `seen != 0 && ...` check declared such a node dead immediately —
    // at t=0 every node looked dead before its first ping could arrive.
    return host_.sim().now() - start_time_ < cfg_.dead_after;
  }
  return host_.sim().now() - seen < cfg_.dead_after;
}

int LamDaemon::alive_count() const {
  int n = 0;
  for (int i = 0; i < nodes_; ++i) {
    if (is_alive(i)) ++n;
  }
  return n;
}

void LamDaemon::broadcast_abort() {
  assert(is_master());
  for (int node = 1; node < nodes_; ++node) {
    send_ctl_(node, kAbort);
    ++stats_.aborts_sent;
  }
}

}  // namespace sctpmpi::core
