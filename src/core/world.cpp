#include "core/world.hpp"

#include <algorithm>
#include <atomic>
#include <stdexcept>

#include "core/rpi_sctp.hpp"
#include "core/rpi_tcp.hpp"

namespace sctpmpi::core {

const char* to_string(TransportKind t) {
  switch (t) {
    case TransportKind::kTcp: return "LAM_TCP";
    case TransportKind::kSctp: return "LAM_SCTP";
  }
  return "?";
}

World::World(WorldConfig cfg)
    : cfg_(cfg), group_(cfg.shards == 0 ? 1 : cfg.shards) {
  if (cfg_.shards == 0) {
    throw std::invalid_argument("World: shards must be >= 1");
  }
  if (cfg_.shards > 1 && cfg_.enable_lamd) {
    throw std::invalid_argument(
        "World: enable_lamd requires shards == 1 (the failure bus and "
        "daemon control plane are not shard-safe)");
  }
  net::ClusterParams params;
  params.hosts = static_cast<unsigned>(cfg_.ranks);
  params.interfaces = cfg_.interfaces;
  params.link = cfg_.link;
  params.link.loss = cfg_.loss;
  params.costs = cfg_.host_costs;
  params.topology = cfg_.topology;
  params.fattree = cfg_.fattree;
  params.placement = cfg_.placement;
  cluster_ = std::make_unique<net::Cluster>(group_, sim::Rng(cfg_.seed),
                                            params);

  auto rank_addr = [this](int r) {
    return cluster_->addr(static_cast<unsigned>(r));
  };

  RpiConfig rpi_cfg = cfg_.rpi;
  for (int r = 0; r < cfg_.ranks; ++r) {
    if (cfg_.transport == TransportKind::kTcp) {
      rpi_cfg.rx_byte_cost_ns = cfg_.tcp_rx_byte_cost_ns;
      tcp_stacks_.push_back(std::make_unique<tcp::TcpStack>(
          cluster_->host(static_cast<unsigned>(r)), cfg_.tcp,
          sim::Rng(cfg_.seed).fork(5000 + static_cast<unsigned>(r))));
      rpis_.push_back(std::make_unique<TcpRpi>(
          *tcp_stacks_.back(), r, cfg_.ranks, rpi_cfg, rank_addr));
    } else {
      rpi_cfg.rx_byte_cost_ns = cfg_.sctp_rx_byte_cost_ns;
      sctp::SctpConfig sc = cfg_.sctp;
      // The stream pool (paper §3.2.1) is negotiated at association setup.
      sc.num_ostreams = static_cast<std::uint16_t>(cfg_.rpi.stream_pool);
      sc.max_instreams =
          std::max<std::uint16_t>(sc.max_instreams,
                                  static_cast<std::uint16_t>(
                                      cfg_.rpi.stream_pool));
      sctp_stacks_.push_back(std::make_unique<sctp::SctpStack>(
          cluster_->host(static_cast<unsigned>(r)), sc,
          sim::Rng(cfg_.seed).fork(6000 + static_cast<unsigned>(r))));
      rpis_.push_back(std::make_unique<SctpRpi>(
          *sctp_stacks_.back(), r, cfg_.ranks, rpi_cfg, rank_addr));
    }
  }

  if (cfg_.enable_lamd) {
    bus_ = std::make_unique<FailureBus>(cfg_.ranks);
    LamdConfig lcfg = cfg_.lamd;
    // A TCP world has no SCTP stacks to carry the control channel; fall
    // back to stock LAM's UDP daemons (paper §3.5.3).
    if (cfg_.transport == TransportKind::kTcp) {
      lcfg.transport = CtlTransport::kUdp;
    }
    for (int r = 0; r < cfg_.ranks; ++r) {
      net::Host& host = cluster_->host(static_cast<unsigned>(r));
      sctp::SctpStack* ss = nullptr;
      net::UdpStack* us = nullptr;
      if (lcfg.transport == CtlTransport::kSctp) {
        ss = sctp_stacks_[static_cast<std::size_t>(r)].get();
      } else {
        udp_stacks_.push_back(std::make_unique<net::UdpStack>(host));
        us = udp_stacks_.back().get();
      }
      lamds_.push_back(std::make_unique<LamDaemon>(host, r, cfg_.ranks, lcfg,
                                                   rank_addr, ss, us));
    }
    // Dead-node verdicts from the master reach every surviving rank; a
    // rank whose own RPI gives up on a peer hears about it locally even
    // if it is the one cut off from the master.
    lamds_[0]->set_node_dead_callback(
        [this](int node) { bus_->announce(node, /*except=*/node); });
    for (int r = 0; r < cfg_.ranks; ++r) {
      rpis_[static_cast<std::size_t>(r)]->set_peer_unreachable_callback(
          [this, r](int peer) { bus_->announce_to(r, peer); });
    }
  }
}

World::~World() = default;

void World::run(std::function<void(Mpi&)> body) {
  if (cfg_.enable_lamd && !lamds_started_) {
    // Daemons live outside the rank processes: their timers keep firing
    // for as long as the simulation is driven, and ProcessGroup::run_all
    // returns once every rank finishes regardless of pending timer events.
    for (auto& d : lamds_) d->start();
    lamds_started_ = true;
  }
  if (group_.count() > 1 || cfg_.force_parallel_driver) {
    run_parallel_(body);
    return;
  }
  sim::Simulator& sim0 = group_.shard(0);
  sim::ProcessGroup group(sim0);
  std::vector<sim::SimTime> finish(static_cast<std::size_t>(cfg_.ranks), 0);
  for (int r = 0; r < cfg_.ranks; ++r) {
    group.spawn("rank" + std::to_string(r),
                [this, r, &body, &finish, &sim0](sim::Process& proc) {
                  Rpi& rpi = *rpis_[static_cast<std::size_t>(r)];
                  rpi.init(proc);
                  Mpi mpi(r, cfg_.ranks, rpi, proc);
                  if (bus_ != nullptr) {
                    bus_->attach(r, &proc);
                    mpi.set_failure_bus(bus_.get());
                  }
                  body(mpi);
                  if (bus_ != nullptr) bus_->detach(r);
                  finish[static_cast<std::size_t>(r)] = sim0.now();
                  rpi.finalize(proc);
                });
  }
  try {
    group.run_all();
  } catch (const std::exception&) {
    // Post-mortem for simulated-job deadlocks: dump every rank's
    // progression state before propagating.
    for (auto& r : rpis_) r->debug_dump();
    throw;
  }
  elapsed_ = *std::max_element(finish.begin(), finish.end());
}

void World::run_until(std::function<void(Mpi&)> body, sim::SimTime horizon) {
  if (group_.count() > 1) {
    throw std::logic_error("World::run_until: single-shard only");
  }
  sim::Simulator& sim0 = group_.shard(0);
  sim::ProcessGroup group(sim0);
  std::vector<sim::SimTime> finish(static_cast<std::size_t>(cfg_.ranks), 0);
  for (int r = 0; r < cfg_.ranks; ++r) {
    group.spawn("rank" + std::to_string(r),
                [this, r, &body, &finish, &sim0](sim::Process& proc) {
                  Rpi& rpi = *rpis_[static_cast<std::size_t>(r)];
                  rpi.init(proc);
                  Mpi mpi(r, cfg_.ranks, rpi, proc);
                  body(mpi);
                  finish[static_cast<std::size_t>(r)] = sim0.now();
                  rpi.finalize(proc);
                });
  }
  for (std::size_t i = 0; i < group.size(); ++i) group.at(i).start();
  sim0.run_until(horizon);
  // Ranks still inside the body are abandoned: ~ProcessGroup resumes each
  // one until it observes the flag and unwinds its stack. Transport state
  // is left mid-flight — this world is measurement scaffolding, not a
  // result carrier.
  elapsed_ = *std::max_element(finish.begin(), finish.end());
}

std::vector<unsigned> measured_placement(
    const WorldConfig& cfg, const std::function<void(Mpi&)>& body) {
  if (cfg.shards <= 1) return {};
  WorldConfig warm = cfg;
  warm.shards = 1;
  warm.placement.clear();
  warm.force_parallel_driver = false;
  warm.adaptive_placement = false;
  warm.enable_lamd = false;
  World world(warm);
  net::LoadProfile& profile = world.cluster().enable_load_profile();
  world.run_until(body, cfg.placement_warmup);
  return net::compute_placement(profile, world.cluster().placement_groups(),
                                cfg.shards);
}

void World::run_parallel_(const std::function<void(Mpi&)>& body) {
  const unsigned shards = group_.count();
  std::vector<std::unique_ptr<sim::ProcessGroup>> groups;
  groups.reserve(shards);
  for (unsigned s = 0; s < shards; ++s) {
    groups.push_back(std::make_unique<sim::ProcessGroup>(group_.shard(s)));
  }
  std::vector<sim::SimTime> finish(static_cast<std::size_t>(cfg_.ranks), 0);
  std::atomic<std::uint32_t> unfinished{
      static_cast<std::uint32_t>(cfg_.ranks)};
  for (int r = 0; r < cfg_.ranks; ++r) {
    const unsigned s = cluster_->shard_of_host(static_cast<unsigned>(r));
    groups[s]->spawn(
        "rank" + std::to_string(r),
        [this, r, &body, &finish, &unfinished](sim::Process& proc) {
          Rpi& rpi = *rpis_[static_cast<std::size_t>(r)];
          rpi.init(proc);
          Mpi mpi(r, cfg_.ranks, rpi, proc);
          if (bus_ != nullptr) {
            bus_->attach(r, &proc);
            mpi.set_failure_bus(bus_.get());
          }
          body(mpi);
          if (bus_ != nullptr) bus_->detach(r);
          finish[static_cast<std::size_t>(r)] = proc.sim().now();
          rpi.finalize(proc);
          // Must stay the body's final statement: run_all() observes
          // finished() right after the event in which the body returns, so
          // decrementing here makes the forced single-shard driver's stop
          // cut land on the identical event boundary.
          unfinished.fetch_sub(1, std::memory_order_relaxed);
        });
  }
  // Process::start only schedules the first activation on the process's
  // own simulator; no worker thread is running yet, so this is safe.
  for (auto& g : groups) {
    for (std::size_t i = 0; i < g->size(); ++i) g->at(i).start();
  }
  sim::ShardGroup::RunOptions opts;
  opts.lookahead = cluster_->cross_shard_lookahead();
  opts.lookahead_matrix = cluster_->cross_shard_lookahead_matrix();
  opts.adaptive_window = cfg_.adaptive_window && group_.count() > 1;
  opts.shard_done = [&groups](unsigned s) {
    sim::ProcessGroup& g = *groups[s];
    for (std::size_t i = 0; i < g.size(); ++i) {
      if (!g.at(i).finished()) return false;
    }
    return true;
  };
  opts.stop = &unfinished;
  try {
    group_.run(opts);
    for (auto& g : groups) {
      for (std::size_t i = 0; i < g->size(); ++i) g->at(i).rethrow_error();
    }
  } catch (const std::exception&) {
    for (auto& r : rpis_) r->debug_dump();
    throw;
  }
  elapsed_ = *std::max_element(finish.begin(), finish.end());
}

World::Totals World::transport_totals() const {
  Totals t;
  for (const auto& s : tcp_stacks_) {
    (void)s;  // per-socket stats are aggregated below via RPI when needed
  }
  // TCP per-socket stats are not centrally tracked; SCTP per-association
  // stats are. For cross-transport reporting the benches use link stats,
  // so we aggregate what each stack exposes uniformly: cluster totals.
  const net::LinkStats ls = cluster_->total_link_stats();
  t.packets = ls.tx_packets;
  return t;
}

}  // namespace sctpmpi::core
