// Public MPI-like API for simulated ranks.
//
// Each rank's body receives an Mpi& and programs against blocking and
// non-blocking point-to-point calls, wildcards, probes and collectives —
// the subset the paper's workloads (MPBench ping-pong, NAS kernels, Bulk
// Processor Farm) require. Blocking calls drive the RPI progression engine
// and suspend the rank's simulated process while waiting.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/request.hpp"
#include "core/rpi.hpp"
#include "sim/process.hpp"
#include "sim/time.hpp"

namespace sctpmpi::core {

class FailureBus;

/// Communicator handle: a context id. All communicators span all ranks
/// (MPI_COMM_WORLD plus dup()-ed contexts); what matters for the paper is
/// that (context, rank, tag) — TRC — scopes message matching.
struct Comm {
  std::uint32_t context = 0;
};

class Request {
 public:
  Request() = default;
  bool valid() const { return impl_ != nullptr; }

 private:
  friend class Mpi;
  explicit Request(RpiRequest* impl) : impl_(impl) {}
  RpiRequest* impl_ = nullptr;
};

class Mpi {
 public:
  Mpi(int rank, int size, Rpi& rpi, sim::Process& proc);

  int rank() const { return rank_; }
  int size() const { return size_; }
  Comm world() const { return Comm{0}; }

  /// Collective: allocates a fresh context (call on all ranks in the same
  /// order — contexts are assigned deterministically).
  Comm dup(Comm base);

  // ---- point-to-point ----------------------------------------------------
  void send(std::span<const std::byte> buf, int dst, int tag, Comm c = {});
  void ssend(std::span<const std::byte> buf, int dst, int tag, Comm c = {});
  MpiStatus recv(std::span<std::byte> buf, int src, int tag, Comm c = {});

  Request isend(std::span<const std::byte> buf, int dst, int tag,
                Comm c = {});
  Request issend(std::span<const std::byte> buf, int dst, int tag,
                 Comm c = {});
  Request irecv(std::span<std::byte> buf, int src, int tag, Comm c = {});

  MpiStatus wait(Request& req);
  bool test(Request& req, MpiStatus* status = nullptr);
  /// Blocks until at least one request completes; returns its index
  /// (lowest completed) and invalidates it.
  int waitany(std::span<Request> reqs, MpiStatus* status = nullptr);
  void waitall(std::span<Request> reqs);

  MpiStatus probe(int src, int tag, Comm c = {});
  bool iprobe(int src, int tag, Comm c, MpiStatus* status);

  // ---- failure awareness (WorldConfig.enable_lamd) -----------------------
  /// Wired by World when a FailureBus exists; the bus wakes this rank's
  /// process when a rank-failure verdict lands.
  void set_failure_bus(FailureBus* bus) { bus_ = bus; }
  /// Next failed rank announced to this rank, or -1. Non-blocking; each
  /// failed rank is reported exactly once.
  int poll_rank_failure();
  /// True once this rank's own RPI has declared `rank` unreachable.
  bool peer_dead(int rank) const { return rpi_.peer_dead(rank); }
  /// Blocks until a request completes, a rank-failure verdict arrives,
  /// or `timeout` (sim time, 0 = never) elapses — whichever is first.
  /// On completion: returns the index (invalidated, status filled). On
  /// failure: returns -1 with *failed_rank set — the requests stay valid
  /// so the caller can decide which to abandon. On timeout: returns -2
  /// (applications use this to emit liveness nudges while otherwise idle,
  /// giving their transport traffic to fail on when they are isolated).
  int waitany_or_failure(std::span<Request> reqs, MpiStatus* status,
                         int* failed_rank, sim::SimTime timeout = 0);
  /// Abandons a posted (unmatched) receive and invalidates the request —
  /// how a recovery path drops a recv aimed at a rank declared dead.
  void cancel(Request& req);

  // ---- collectives (built on point-to-point, paper §2.2.2) ---------------
  void barrier(Comm c = {});
  void bcast(std::span<std::byte> buf, int root, Comm c = {});
  /// Element-wise reduction of `in` into `out` (valid at root only).
  template <typename T, typename Op>
  void reduce(std::span<const T> in, std::span<T> out, Op op, int root,
              Comm c = {});
  template <typename T, typename Op>
  void allreduce(std::span<const T> in, std::span<T> out, Op op, Comm c = {});
  template <typename T>
  T allreduce_sum(T value, Comm c = {});
  /// Gathers equal-size blocks to root (recv spans size()*block bytes).
  void gather(std::span<const std::byte> send, std::span<std::byte> recv,
              int root, Comm c = {});
  void allgather(std::span<const std::byte> send, std::span<std::byte> recv,
                 Comm c = {});
  void scatter(std::span<const std::byte> send, std::span<std::byte> recv,
               int root, Comm c = {});
  /// Personalized all-to-all with equal block sizes.
  void alltoall(std::span<const std::byte> send, std::span<std::byte> recv,
                Comm c = {});

  // ---- environment --------------------------------------------------------
  /// Virtual wall-clock in seconds (MPI_Wtime).
  double wtime() const;
  /// Models a computation phase of the given virtual duration.
  void compute(sim::SimTime duration) { proc_.sleep_for(duration); }
  void compute_seconds(double s) { compute(sim::from_seconds(s)); }

  sim::Process& process() { return proc_; }
  Rpi& rpi() { return rpi_; }

 private:
  RpiRequest* new_request_();
  void release_(RpiRequest* r);
  void wait_until_(const std::function<bool()>& pred);

  // Collective helpers on the reserved collective context.
  static constexpr std::uint32_t kCollMask = 0x80000000u;
  void coll_send_(std::span<const std::byte> buf, int dst, int tag, Comm c);
  MpiStatus coll_recv_(std::span<std::byte> buf, int src, int tag, Comm c);

  int rank_;
  int size_;
  Rpi& rpi_;
  sim::Process& proc_;
  FailureBus* bus_ = nullptr;
  std::uint32_t next_context_ = 1;
  std::unordered_map<RpiRequest*, std::unique_ptr<RpiRequest>> live_;
};

// ---------------------------------------------------------------------------
// Reduction operators
// ---------------------------------------------------------------------------

struct OpSum {
  template <typename T>
  T operator()(T a, T b) const {
    return a + b;
  }
};
struct OpMax {
  template <typename T>
  T operator()(T a, T b) const {
    return a > b ? a : b;
  }
};
struct OpMin {
  template <typename T>
  T operator()(T a, T b) const {
    return a < b ? a : b;
  }
};

template <typename T, typename Op>
void Mpi::reduce(std::span<const T> in, std::span<T> out, Op op, int root,
                 Comm c) {
  // Binomial reduction tree rooted at `root`.
  const int vrank = (rank_ - root + size_) % size_;
  std::vector<T> acc(in.begin(), in.end());
  std::vector<T> incoming(in.size());
  const int coll_tag = 0x102;
  for (int k = 1; k < size_; k <<= 1) {
    if ((vrank & k) != 0) {
      const int dst = ((vrank - k) + root) % size_;
      coll_send_(std::as_bytes(std::span<const T>(acc)), dst, coll_tag, c);
      break;
    }
    if (vrank + k < size_) {
      const int src = ((vrank + k) + root) % size_;
      coll_recv_(std::as_writable_bytes(std::span<T>(incoming)), src,
                 coll_tag, c);
      for (std::size_t i = 0; i < acc.size(); ++i) {
        acc[i] = op(acc[i], incoming[i]);
      }
    }
  }
  if (rank_ == root) {
    std::copy(acc.begin(), acc.end(), out.begin());
  }
}

template <typename T, typename Op>
void Mpi::allreduce(std::span<const T> in, std::span<T> out, Op op, Comm c) {
  reduce(in, out, op, /*root=*/0, c);
  bcast(std::as_writable_bytes(out), /*root=*/0, c);
}

template <typename T>
T Mpi::allreduce_sum(T value, Comm c) {
  T out{};
  allreduce(std::span<const T>(&value, 1), std::span<T>(&out, 1), OpSum{}, c);
  return out;
}

}  // namespace sctpmpi::core
