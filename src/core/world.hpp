// World: assembles a full simulated MPI job — cluster, per-host transport
// stacks, per-rank RPIs and rank processes — mirroring the paper's testbed
// (8 nodes, 1 Gb/s Ethernet, Dummynet loss) with either the LAM-TCP-style
// module or the paper's SCTP module underneath.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "core/failure.hpp"
#include "core/lamd.hpp"
#include "core/mpi.hpp"
#include "core/rpi.hpp"
#include "net/cluster.hpp"
#include "net/udp.hpp"
#include "sctp/config.hpp"
#include "sctp/socket.hpp"
#include "sim/process.hpp"
#include "sim/rng.hpp"
#include "sim/shard.hpp"
#include "sim/simulator.hpp"
#include "tcp/config.hpp"
#include "tcp/socket.hpp"

namespace sctpmpi::core {

enum class TransportKind {
  kTcp,   // stock LAM-TCP baseline
  kSctp,  // the paper's SCTP module (stream pool size via RpiConfig)
};

const char* to_string(TransportKind t);

struct WorldConfig {
  int ranks = 8;                      // paper: 8-node cluster
  TransportKind transport = TransportKind::kSctp;
  double loss = 0.0;                  // Dummynet per-packet loss (0/1/2%)
  std::uint64_t seed = 1;
  unsigned interfaces = 1;            // 3 reproduces the multihomed testbed
  net::LinkParams link;               // 1 Gb/s Ethernet defaults
  net::HostCostModel host_costs;
  tcp::TcpConfig tcp;                 // paper §4: 220 KiB buffers, no Nagle
  sctp::SctpConfig sctp;              // paper §4: CRC32c off, 220 KiB buffers
  RpiConfig rpi;                      // eager limit, stream pool, race fix
  /// Middleware receive-path cost per byte. TCP pays the byte-stream
  /// penalty (envelope scanning + reassembly copy); SCTP receives whole
  /// messages (paper §3.2.4). These two constants are the calibration
  /// discussed in DESIGN.md.
  double tcp_rx_byte_cost_ns = 4.5;
  double sctp_rx_byte_cost_ns = 0.35;
  /// Runs a LAM daemon on every node and routes its master's dead-node
  /// verdicts (plus per-rank RPI give-ups) onto a FailureBus the job can
  /// poll through Mpi::poll_rank_failure. Off by default: the daemons add
  /// background control traffic that would perturb the golden traces.
  bool enable_lamd = false;
  LamdConfig lamd;
  /// Network topology. kFlat is the paper's 8-node testbed; kFatTree is a
  /// k-ary Clos (ranks must equal k^3/4, interfaces must be 1).
  net::TopologyKind topology = net::TopologyKind::kFlat;
  net::FatTreeParams fattree;  // used when topology == kFatTree
  /// Simulator shards. 1 = the classic single-threaded run (golden-trace
  /// path). >1 partitions hosts over worker threads synchronized by
  /// conservative lookahead (see sim/shard.hpp); incompatible with
  /// enable_lamd and with packet observers.
  unsigned shards = 1;
  /// Host -> shard placement override; empty = contiguous blocks.
  std::vector<unsigned> placement;
  /// Forces the windowed ShardGroup driver even at shards == 1. Testing
  /// hook: that path must be byte-identical to the classic run_all path.
  bool force_parallel_driver = false;
  /// Lets the sharded driver widen its window cap (up to 64x) while event
  /// density is low. Keyed off executed-event counts only, so sharded runs
  /// stay rerun-identical. No effect at shards == 1 — the golden-trace
  /// path never windows.
  bool adaptive_window = true;
  /// Derive the host->shard map from a measured warmup instead of
  /// contiguous blocks: run the body single-shard for `placement_warmup`
  /// of virtual time with load profiling on, then greedy
  /// balance-then-min-cut over the profile (net::compute_placement). The
  /// warmup is deterministic sim state, so the resulting map — and the
  /// sharded run using it — is identical on every rerun. Only consulted by
  /// measured_placement(); an explicit `placement` wins.
  bool adaptive_placement = false;
  sim::SimTime placement_warmup = 10 * sim::kMillisecond;
};

class World {
 public:
  explicit World(WorldConfig cfg);
  ~World();
  World(const World&) = delete;
  World& operator=(const World&) = delete;

  /// Runs `body` on every rank (between MPI init and finalize) and drives
  /// the simulation to completion.
  void run(std::function<void(Mpi&)> body);

  /// Single-shard only: runs `body` on every rank but stops once the
  /// virtual clock reaches `horizon`, abandoning still-running rank
  /// processes (their stacks unwind safely). Used for placement warmup
  /// measurement — pair with cluster().enable_load_profile().
  void run_until(std::function<void(Mpi&)> body, sim::SimTime horizon);

  /// Virtual time from job start until the last rank finished its body
  /// (connection setup included — it is part of MPI_Init in the paper).
  sim::SimTime elapsed() const { return elapsed_; }
  double elapsed_seconds() const { return sim::to_seconds(elapsed_); }

  /// Shard 0's simulator (the only one, in single-shard worlds).
  sim::Simulator& sim() { return group_.shard(0); }
  sim::ShardGroup& shard_group() { return group_; }
  unsigned shards() const { return group_.count(); }
  net::Cluster& cluster() { return *cluster_; }
  Rpi& rpi(int rank) { return *rpis_.at(static_cast<std::size_t>(rank)); }
  const WorldConfig& config() const { return cfg_; }

  /// Rank-failure event fan-out (null unless cfg.enable_lamd).
  FailureBus* failure_bus() { return bus_.get(); }
  /// Node `n`'s daemon (cfg.enable_lamd only; node 0 is the master).
  LamDaemon& lamd(int node) {
    return *lamds_.at(static_cast<std::size_t>(node));
  }

  /// Aggregate transport statistics across all ranks.
  struct Totals {
    std::uint64_t packets = 0;
    std::uint64_t retransmits = 0;
    std::uint64_t timeouts = 0;
    std::uint64_t fast_retransmits = 0;
  };
  Totals transport_totals() const;

 private:
  void run_parallel_(const std::function<void(Mpi&)>& body);

  WorldConfig cfg_;
  sim::ShardGroup group_;
  std::unique_ptr<net::Cluster> cluster_;
  std::vector<std::unique_ptr<tcp::TcpStack>> tcp_stacks_;
  std::vector<std::unique_ptr<sctp::SctpStack>> sctp_stacks_;
  std::vector<std::unique_ptr<Rpi>> rpis_;
  // Control plane (enable_lamd only).
  std::unique_ptr<FailureBus> bus_;
  std::vector<std::unique_ptr<net::UdpStack>> udp_stacks_;
  std::vector<std::unique_ptr<LamDaemon>> lamds_;
  bool lamds_started_ = false;
  sim::SimTime elapsed_ = 0;
};

/// Measured host->shard placement for `cfg`: builds a throwaway 1-shard
/// world over the same config/seed, profiles `cfg.placement_warmup` of
/// virtual time of `body`, and maps the cluster's placement groups onto
/// `cfg.shards` shards by load and traffic (net::compute_placement).
/// Deterministic for a given (cfg, body). Returns an empty vector when
/// cfg.shards <= 1 (nothing to place).
std::vector<unsigned> measured_placement(const WorldConfig& cfg,
                                         const std::function<void(Mpi&)>& body);

}  // namespace sctpmpi::core
