// LAM-style message envelope (paper Fig. 2): every MPI message body is
// preceded by an envelope carrying length, tag, context, flags, sender rank
// and a sequence number. Matching of sends to receives uses the
// (context, source rank, tag) triple — the "TRC" the paper maps onto SCTP
// streams.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "net/buffer.hpp"
#include "net/bytes.hpp"

namespace sctpmpi::core {

inline constexpr std::size_t kEnvelopeBytes = 24;

/// Envelope flag bits (the LAM flags field; see paper §2.2.2).
enum EnvFlags : std::uint16_t {
  kFlagShort = 0x0000,     // eager short message: body follows immediately
  kFlagLong = 0x0001,      // rendezvous request for a long message (no body)
  kFlagLongAck = 0x0002,   // receiver's ready-acknowledgment
  kFlagLongBody = 0x0004,  // envelope preceding the long message body
  kFlagSsend = 0x0008,     // synchronous send: sender waits for match ack
  kFlagSsendAck = 0x0010,
  kFlagCtl = 0x0020,       // middleware control (init barrier, finalize)
  kFlagReplayAck = 0x0040, // recovery: cumulative delivered-seq ack (seq
                           // field = highest contiguous delivered seq)
};

struct Envelope {
  std::uint32_t length = 0;   // body length in bytes
  std::int32_t tag = 0;
  std::uint32_t context = 0;  // communicator context id
  std::uint16_t flags = 0;
  std::int32_t src_rank = 0;
  std::uint32_t seq = 0;      // per-(sender,peer) sequence number

  void encode_to(std::vector<std::byte>& out) const {
    net::ByteWriter w(out);
    w.u32(length);
    w.u32(static_cast<std::uint32_t>(tag));
    w.u32(context);
    w.u16(flags);
    w.u16(0);  // pad to 24 bytes
    w.u32(static_cast<std::uint32_t>(src_rank));
    w.u32(seq);
  }

  std::vector<std::byte> encode() const {
    std::vector<std::byte> out;
    out.reserve(kEnvelopeBytes);
    encode_to(out);
    return out;
  }

  /// Encodes into an immutable ref-counted Buffer: the form the RPIs queue
  /// (and the recovery layer retains) so requeues are refcount bumps.
  net::Buffer encode_buffer() const {
    net::Buffer::Builder b;
    b.bytes().reserve(kEnvelopeBytes);
    encode_to(b.bytes());
    return std::move(b).finish();
  }

  static Envelope decode(std::span<const std::byte> wire) {
    net::ByteReader r(wire);
    Envelope e;
    e.length = r.u32();
    e.tag = static_cast<std::int32_t>(r.u32());
    e.context = r.u32();
    e.flags = r.u16();
    r.skip(2);
    e.src_rank = static_cast<std::int32_t>(r.u32());
    e.seq = r.u32();
    return e;
  }
};

static_assert(kEnvelopeBytes == 24);

}  // namespace sctpmpi::core
