#include "core/rpi_tcp.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>

#include "sim/simulator.hpp"

namespace sctpmpi::core {

TcpRpi::TcpRpi(tcp::TcpStack& stack, int rank, int size, RpiConfig cfg,
               std::function<net::IpAddr(int)> rank_addr,
               std::uint16_t base_port)
    : stack_(stack),
      rank_(rank),
      size_(size),
      cfg_(cfg),
      rank_addr_(std::move(rank_addr)),
      base_port_(base_port),
      peers_(static_cast<std::size_t>(size)),
      next_seq_(static_cast<std::size_t>(size), 1),
      rec_(static_cast<std::size_t>(size)),
      jitter_rng_(sim::Rng(cfg.recovery.seed)
                      .fork(9000u + static_cast<std::uint64_t>(rank))) {}

void TcpRpi::charge_(sim::SimTime t) {
  if (proc_ != nullptr) proc_->charge(t);
}

// ---------------------------------------------------------------------------
// Connection setup: full mesh, lower rank connects to higher (LAM-style
// fully connected environment, paper §3.3). accept()/connect() sequencing
// provides the synchronization TCP gets "for free" (paper §3.4).
// ---------------------------------------------------------------------------

void TcpRpi::init(sim::Process& proc) {
  proc_ = &proc;
  listener_ = stack_.create_socket();
  listener_->bind(static_cast<std::uint16_t>(base_port_ + rank_));
  listener_->listen();
  listener_->set_activity_callback([this] { note_activity_(); });

  // Active connections to higher ranks; the 4-byte rank id identifies us.
  for (int peer = rank_ + 1; peer < size_; ++peer) {
    tcp::TcpSocket* s = stack_.create_socket();
    s->connect(rank_addr_(peer),
               static_cast<std::uint16_t>(base_port_ + peer));
    s->set_activity_callback([this] { note_activity_(); });
    peers_[static_cast<std::size_t>(peer)].sock = s;
    charge_(cfg_.call_cost);
  }

  int identified = 0;  // accepted sockets whose peer rank we know
  std::vector<bool> id_sent(static_cast<std::size_t>(size_), false);
  std::vector<tcp::TcpSocket*> unidentified;
  while (true) {
    // Send our rank id on each newly connected active socket.
    bool all_active_ready = true;
    for (int peer = rank_ + 1; peer < size_; ++peer) {
      Peer& p = peers_[static_cast<std::size_t>(peer)];
      if (!p.sock->connected()) {
        all_active_ready = false;
        continue;
      }
      if (!id_sent[static_cast<std::size_t>(peer)]) {
        OutMsg id;
        net::Buffer::Builder b;
        net::ByteWriter w(b.bytes());
        w.u32(static_cast<std::uint32_t>(rank_));
        id.header = std::move(b).finish();
        p.outq.push_back(std::move(id));
        id_sent[static_cast<std::size_t>(peer)] = true;
        pump_writes_(peer);
      }
    }
    // Accept from lower ranks and read their identification word.
    while (tcp::TcpSocket* child = listener_->accept()) {
      child->set_activity_callback([this] { note_activity_(); });
      unidentified.push_back(child);
    }
    for (auto it = unidentified.begin(); it != unidentified.end();) {
      std::array<std::byte, 4> idword;
      auto n = (*it)->recv(idword);
      charge_(cfg_.call_cost);
      if (n == 4) {
        net::ByteReader r(idword);
        const int peer = static_cast<int>(r.u32());
        peers_[static_cast<std::size_t>(peer)].sock = *it;
        ++identified;
        it = unidentified.erase(it);
      } else {
        ++it;
      }
    }
    if (all_active_ready && identified == rank_) break;
    block(proc);
  }

  if (recovering_()) {
    for (int peer = 0; peer < size_; ++peer) {
      if (peer != rank_) wire_error_callback_(peer);
    }
  }
}

void TcpRpi::finalize(sim::Process& proc) {
  // Drain any queued output, then close sockets.
  bool pending = true;
  while (pending) {
    advance();
    pending = false;
    for (auto& p : peers_) {
      if (p.sock != nullptr && !p.outq.empty()) pending = true;
    }
    if (pending) block(proc);
  }
  for (auto& p : peers_) {
    if (p.sock != nullptr) p.sock->close();
  }
}

// ---------------------------------------------------------------------------
// Request initiation
// ---------------------------------------------------------------------------

void TcpRpi::start_send(RpiRequest* req) {
  ++stats_.sends_started;
  const int peer = req->peer;
  assert(peer != rank_ && "self-sends are handled in the Mpi facade");
  if (recovering_() && rec_of_(peer).dead) {
    // Peer declared failed: sends complete as no-ops (the application
    // learns of the failure through the rank-failure event, not through
    // a hang inside MPI_Send).
    req->done = true;
    return;
  }
  req->seq = next_seq_[static_cast<std::size_t>(peer)]++;

  Envelope env;
  env.length = static_cast<std::uint32_t>(req->send_len);
  env.tag = req->tag;
  env.context = req->context;
  env.src_rank = rank_;
  env.seq = req->seq;

  Peer& p = peers_[static_cast<std::size_t>(peer)];
  // Ingest the user buffer into an immutable ref-counted body exactly once;
  // everything downstream (send queue, socket, retained replay copies)
  // shares slices of it.
  req->send_body =
      net::Buffer::copy_of(std::span(req->send_buf, req->send_len));
  if (req->send_len <= cfg_.eager_limit) {
    // Eager send: envelope + body back-to-back (paper §2.2.2).
    env.flags = req->sync ? kFlagSsend : kFlagShort;
    OutMsg m;
    m.header = env.encode_buffer();
    m.body = net::BufferSlice{req->send_body};
    if (recovering_()) {
      // Retain shared references: the request completes now (eager
      // buffering), so the user buffer may be reused before delivery is
      // confirmed — the Buffer keeps the bytes alive.
      rec_of_(peer).retain(
          RetainedMsg{req->seq, env.flags, m.header, req->send_body, false});
      if (req->sync) {
        pending_ssend_.put(peer, req->seq, req);
      } else {
        req->done = true;
      }
    } else {
      m.req = req;
      m.completes_request = !req->sync;  // ssend completes on the ack
      if (req->sync) pending_ssend_.put(peer, req->seq, req);
    }
    p.outq.push_back(std::move(m));
    ++stats_.eager_msgs;
  } else {
    // Rendezvous: envelope only; the body follows after the ACK.
    env.flags = kFlagLong;
    OutMsg m;
    m.header = env.encode_buffer();
    if (recovering_()) {
      rec_of_(peer).retain(
          RetainedMsg{req->seq, env.flags, m.header, req->send_body, true});
    }
    p.outq.push_back(std::move(m));
    pending_long_send_.put(peer, req->seq, req);
    ++stats_.rendezvous_msgs;
  }
  pump_writes_(peer);
}

void TcpRpi::start_recv(RpiRequest* req) {
  ++stats_.recvs_started;
  // First check the unexpected-message buffer (paper §2.2.2).
  if (auto um = match_.match_unexpected(*req)) {
    const Envelope& env = um->env;
    if ((env.flags & kFlagLong) != 0) {
      // Buffered rendezvous envelope: now send the ACK.
      pending_long_recv_.put(env.src_rank, env.seq, req);
      Envelope ack;
      ack.flags = kFlagLongAck;
      ack.tag = env.tag;
      ack.context = env.context;
      ack.src_rank = rank_;
      ack.seq = env.seq;
      enqueue_ctl_(env.src_rank, ack);
    } else {
      deliver_matched_(req, env, um->body);
      if ((env.flags & kFlagSsend) != 0) {
        Envelope ack;
        ack.flags = kFlagSsendAck;
        ack.context = env.context;
        ack.src_rank = rank_;
        ack.seq = env.seq;
        enqueue_ctl_(env.src_rank, ack);
      }
    }
    return;
  }
  match_.add_posted(req);
}

void TcpRpi::cancel_recv(RpiRequest* req) { match_.remove_posted(req); }

void TcpRpi::deliver_matched_(RpiRequest* req, const Envelope& env,
                              const net::SliceChain& body) {
  const std::size_t n = std::min(body.size(), req->recv_cap);
  body.copy_to(std::span(req->recv_buf, n));
  const auto copy_cost = static_cast<sim::SimTime>(cfg_.rx_byte_cost_ns *
                                                   static_cast<double>(n));
  stack_.host().occupy_cpu(copy_cost);
  charge_(copy_cost);
  req->status.source = env.src_rank;
  req->status.tag = env.tag;
  req->status.count = n;
  req->done = true;
}

void TcpRpi::enqueue_ctl_(int peer, const Envelope& env) {
  OutMsg m;
  m.header = env.encode_buffer();
  m.is_ctl = true;
  peers_[static_cast<std::size_t>(peer)].outq.push_back(std::move(m));
  ++stats_.ctl_msgs;
  pump_writes_(peer);
}

void TcpRpi::enqueue_long_body_(int peer, RpiRequest* req) {
  // Second envelope followed by the long body (paper §2.2.2: "the sender
  // sends back an envelope followed by the long message body").
  Envelope env;
  env.length = static_cast<std::uint32_t>(req->send_len);
  env.tag = req->tag;
  env.context = req->context;
  env.flags = kFlagLong | kFlagLongBody;
  env.src_rank = rank_;
  env.seq = req->seq;
  OutMsg m;
  m.header = env.encode_buffer();
  // The retained rendezvous entry (recovery) already shares req->send_body,
  // so a post-completion replay can resend the body after the user buffer
  // is reused.
  m.body = net::BufferSlice{req->send_body};
  m.req = req;
  m.completes_request = true;
  peers_[static_cast<std::size_t>(peer)].outq.push_back(std::move(m));
  pump_writes_(peer);
}

void TcpRpi::enqueue_long_body_retained_(int peer, const RetainedMsg& r) {
  // Replay path: the rendezvous request completed on our side before the
  // failure, but the receiver re-acked it — rebuild the body envelope from
  // the retained reference.
  Envelope env = Envelope::decode(r.header);
  env.flags = kFlagLong | kFlagLongBody;
  OutMsg m;
  m.header = env.encode_buffer();
  m.body = net::BufferSlice{r.body};
  ++stats_.replayed_msgs;
  peers_[static_cast<std::size_t>(peer)].outq.push_back(std::move(m));
  pump_writes_(peer);
}

// ---------------------------------------------------------------------------
// Progression
// ---------------------------------------------------------------------------

void TcpRpi::advance() {
  if (recovering_()) accept_reconnects_();
  for (int peer = 0; peer < size_; ++peer) {
    if (peer == rank_) continue;
    Peer& p = peers_[static_cast<std::size_t>(peer)];
    if (recovering_()) {
      PeerReplay& rec = rec_of_(peer);
      if (rec.down && !rec.dead && p.sock != nullptr &&
          p.sock->connected()) {
        on_reconnected_(peer);
      }
      if (rec.down || rec.dead) continue;  // endpoint not usable yet
    }
    if (p.sock == nullptr) continue;
    pump_writes_(peer);
    pump_reads_(peer);
  }
}

void TcpRpi::block(sim::Process& proc) {
  if (activity_) {
    activity_ = false;
    return;
  }
  ++stats_.blocks;
  // Suspend until any socket activity callback fires. CPU debt must be
  // flushed before committing to the suspension: a wakeup firing during
  // the debt sleep would otherwise be consumed by it (lost-wakeup).
  blocked_proc_ = &proc;
  proc.flush_charge();
  if (!activity_) proc.suspend();
  blocked_proc_ = nullptr;
  activity_ = false;
}

void TcpRpi::debug_dump() const {
  std::printf("rank %d: posted=%zu unexpected=%zu longS=%zu longR=%zu\n",
              rank_, match_.posted_count(), match_.unexpected_count(),
              pending_long_send_.size(), pending_long_recv_.size());
  for (int peer = 0; peer < size_; ++peer) {
    const Peer& p = peers_[static_cast<std::size_t>(peer)];
    const PeerReplay& rec = rec_[static_cast<std::size_t>(peer)];
    if (p.sock == nullptr && !rec.down && !rec.dead) continue;
    if (p.sock == nullptr) {
      std::printf("  peer %d: down=%d dead=%d attempts=%u retained=%zu\n",
                  peer, (int)rec.down, (int)rec.dead, rec.attempts,
                  rec.retained.size());
      continue;
    }
    std::printf(
        "  peer %d: outq=%zu head_written=%zu rstate=%d body=%zu/%zu "
        "sock[%s cwnd=%u wnd_known=? buf=%zu readable=%d writable=%d]\n",
        peer, p.outq.size(), p.outq.empty() ? 0 : p.outq.front().written,
        static_cast<int>(p.rstate), p.body_have, p.body_total,
        tcp::to_string(p.sock->state()), p.sock->cwnd(),
        p.sock->send_buffered(), (int)p.sock->readable(),
        (int)p.sock->writable());
  }
}

void TcpRpi::pump_writes_(int peer) {
  Peer& p = peers_[static_cast<std::size_t>(peer)];
  if (p.sock == nullptr) return;
  while (!p.outq.empty()) {
    OutMsg& m = p.outq.front();
    // Header and body go out in one writev-style call so that small
    // messages coalesce into a single segment.
    while (m.written < m.header.size()) {
      auto n = p.sock->send_gather(
          net::BufferSlice{m.header}.sub(m.written), m.body);
      charge_(cfg_.call_cost);
      if (n <= 0) return;
      m.written += static_cast<std::size_t>(n);
    }
    while (m.written < m.header.size() + m.body.len) {
      const std::size_t off = m.written - m.header.size();
      auto n = p.sock->send(m.body.sub(off));
      charge_(cfg_.call_cost);
      if (n <= 0) return;
      m.written += static_cast<std::size_t>(n);
    }
    if (m.completes_request && m.req != nullptr) {
      m.req->done = true;
    }
    p.outq.pop_front();
  }
}

void TcpRpi::pump_reads_(int peer) {
  Peer& p = peers_[static_cast<std::size_t>(peer)];
  if (p.sock == nullptr) return;
  while (true) {
    if (p.rstate == RState::kEnvelope) {
      auto n = p.sock->recv(
          std::span(p.env_buf).subspan(p.env_have));
      charge_(cfg_.call_cost);
      if (n <= 0) return;
      p.env_have += static_cast<std::size_t>(n);
      if (p.env_have < kEnvelopeBytes) continue;
      p.env_have = 0;
      p.env = Envelope::decode(p.env_buf);
      on_envelope_(peer);
    } else {
      // Reading a message body into either the matched receive buffer or
      // the unexpected-message temp buffer.
      std::byte* dest;
      std::size_t cap;
      if (p.recv_req != nullptr) {
        dest = p.recv_req->recv_buf;
        cap = p.recv_req->recv_cap;
      } else {
        dest = p.temp_body.data();
        cap = p.temp_body.size();
      }
      std::array<std::byte, 16384> sink;  // overflow beyond capacity
      while (p.body_have < p.body_total) {
        std::span<std::byte> into;
        if (p.body_have < cap) {
          into = std::span(dest, cap).subspan(
              p.body_have, std::min(cap - p.body_have,
                                    p.body_total - p.body_have));
        } else {
          into = std::span(sink).subspan(
              0, std::min(sink.size(), p.body_total - p.body_have));
        }
        auto n = p.sock->recv(into);
        charge_(cfg_.call_cost);
        if (n <= 0) return;
        p.body_have += static_cast<std::size_t>(n);
        // Byte-stream reassembly copy (middleware-level, paper §3.2.4):
        // occupies the node's CPU, contending with the network stack.
        const auto copy_cost = static_cast<sim::SimTime>(
            cfg_.rx_byte_cost_ns * static_cast<double>(n));
        stack_.host().occupy_cpu(copy_cost);
        charge_(copy_cost);
      }
      finish_body_(peer);
    }
  }
}

void TcpRpi::on_envelope_(int peer) {
  Peer& p = peers_[static_cast<std::size_t>(peer)];
  const Envelope& env = p.env;

  if ((env.flags & kFlagReplayAck) != 0) {
    // Recovery: peer advertises its contiguous delivered prefix; trim the
    // retained-send queue up to it.
    rec_of_(peer).trim(env.seq);
    return;
  }
  if ((env.flags & kFlagLongAck) != 0) {
    if (RpiRequest* req = pending_long_send_.take(peer, env.seq)) {
      enqueue_long_body_(peer, req);
    } else if (recovering_()) {
      // Re-acked after our request already completed (replay): resend the
      // body from the retained copy.
      RetainedMsg* r = find_retained_(peer, env.seq);
      if (r != nullptr && !r->body.empty()) {
        enqueue_long_body_retained_(peer, *r);
      }
    }
    return;
  }
  if ((env.flags & kFlagSsendAck) != 0) {
    if (RpiRequest* req = pending_ssend_.take(peer, env.seq)) req->done = true;
    return;
  }
  if ((env.flags & kFlagLongBody) != 0) {
    // Second envelope of the rendezvous: body follows on this stream.
    p.recv_req = pending_long_recv_.take(peer, env.seq);
    if (recovering_() && p.recv_req == nullptr) {
      // Replayed body we already consumed (double-ack race): drain it.
      p.discard_body = true;
    }
    p.body_total = env.length;
    p.body_have = 0;
    p.temp_body.clear();
    p.rstate = RState::kBody;
    return;
  }
  if ((env.flags & kFlagLong) != 0) {
    // Rendezvous request. Match now or buffer the envelope.
    if (recovering_()) {
      PeerReplay& rec = rec_of_(peer);
      if (rec.was_delivered(env.seq)) {
        ++stats_.dup_drops;  // body already fully delivered
        return;
      }
      if (pending_long_recv_.find(peer, env.seq) != nullptr) {
        // Our earlier ACK (or the body it triggered) was lost: re-ack.
        ++stats_.dup_drops;
        Envelope ack;
        ack.flags = kFlagLongAck;
        ack.tag = env.tag;
        ack.context = env.context;
        ack.src_rank = rank_;
        ack.seq = env.seq;
        enqueue_ctl_(peer, ack);
        return;
      }
      if (rec.long_seen.contains(env.seq)) {
        ++stats_.dup_drops;  // already buffered unexpected
        return;
      }
      rec.long_seen.insert(env.seq, env.seq + 1);
    }
    if (RpiRequest* req = match_.match_posted(env)) {
      pending_long_recv_.put(peer, env.seq, req);
      Envelope ack;
      ack.flags = kFlagLongAck;
      ack.tag = env.tag;
      ack.context = env.context;
      ack.src_rank = rank_;
      ack.seq = env.seq;
      enqueue_ctl_(peer, ack);
    } else {
      ++stats_.unexpected_msgs;
      match_.add_unexpected(UnexpectedMsg{env, {}});
    }
    return;
  }

  // Eager short (possibly synchronous): body of env.length follows.
  if (recovering_() && rec_of_(peer).was_delivered(env.seq)) {
    // Replayed duplicate: drain the body, then (for ssend) re-ack so the
    // sender — whose first ack may have been lost — can complete.
    p.recv_req = nullptr;
    p.discard_body = true;
    p.body_total = env.length;
    p.body_have = 0;
    p.temp_body.clear();
    if (env.length == 0) {
      finish_body_(peer);
    } else {
      p.rstate = RState::kBody;
    }
    return;
  }
  p.recv_req = match_.match_posted(env);
  p.body_total = env.length;
  p.body_have = 0;
  if (p.recv_req == nullptr) {
    p.temp_body.assign(env.length, std::byte{0});
  }
  if (env.length == 0) {
    finish_body_(peer);
  } else {
    p.rstate = RState::kBody;
  }
}

void TcpRpi::finish_body_(int peer) {
  Peer& p = peers_[static_cast<std::size_t>(peer)];
  const Envelope& env = p.env;
  const bool needs_ssend_ack = (env.flags & kFlagSsend) != 0;

  if (recovering_() && p.discard_body) {
    // Replayed duplicate fully drained off the stream.
    ++stats_.dup_drops;
    if (needs_ssend_ack) {
      Envelope ack;
      ack.flags = kFlagSsendAck;
      ack.context = env.context;
      ack.src_rank = rank_;
      ack.seq = env.seq;
      enqueue_ctl_(peer, ack);
    }
    p.discard_body = false;
    p.recv_req = nullptr;
    p.temp_body = {};
    p.rstate = RState::kEnvelope;
    return;
  }

  // A matching receive may have been posted while the body was in flight
  // on the byte stream; re-match now so a LATER message cannot overtake
  // this one through the posted queue (MPI same-TRC ordering).
  if (p.recv_req == nullptr) {
    if (RpiRequest* req = match_.match_posted(env)) {
      const std::size_t n = std::min(p.temp_body.size(), req->recv_cap);
      std::copy_n(p.temp_body.begin(), static_cast<std::ptrdiff_t>(n),
                  req->recv_buf);
      net::count_payload_copy(n);
      p.recv_req = req;
    }
  }

  if (p.recv_req != nullptr) {
    RpiRequest* req = p.recv_req;
    req->status.source = env.src_rank;
    req->status.tag = env.tag;
    req->status.count = std::min(p.body_total, req->recv_cap);
    req->done = true;
    if (needs_ssend_ack) {
      Envelope ack;
      ack.flags = kFlagSsendAck;
      ack.context = env.context;
      ack.src_rank = rank_;
      ack.seq = env.seq;
      enqueue_ctl_(peer, ack);
    }
  } else {
    ++stats_.unexpected_msgs;
    match_.add_unexpected(
        UnexpectedMsg{env, net::SliceChain::adopt(std::move(p.temp_body))});
    // ssend ack is deferred until the receive is posted (start_recv).
  }
  p.recv_req = nullptr;
  p.temp_body = {};
  p.rstate = RState::kEnvelope;
  if (recovering_()) note_delivered_(peer, env.seq);
}

// ---------------------------------------------------------------------------
// Recovery: teardown, reconnect, replay
// ---------------------------------------------------------------------------

void TcpRpi::wire_error_callback_(int peer) {
  Peer& p = peers_[static_cast<std::size_t>(peer)];
  if (p.sock == nullptr) return;
  p.sock->set_error_callback(
      [this, peer](const char*) { on_sock_error_(peer); });
}

void TcpRpi::on_sock_error_(int peer) {
  if (!recovering_()) return;
  PeerReplay& rec = rec_of_(peer);
  if (rec.dead) return;
  if (!rec.down) {
    handle_peer_down_(peer);
    return;
  }
  // Already down: an active-side reconnect attempt just failed.
  if (peer > rank_) schedule_reconnect_(peer);
}

void TcpRpi::handle_peer_down_(int peer) {
  PeerReplay& rec = rec_of_(peer);
  if (rec.down || rec.dead) return;
  rec.down = true;
  ++stats_.peer_downs;
  Peer& p = peers_[static_cast<std::size_t>(peer)];
  if (p.sock != nullptr) {
    p.sock->deactivate();
    p.sock = nullptr;
  }

  // Read side: rescue the in-flight incoming message's state. The bytes
  // already read are discarded — replay re-sends the whole message.
  if (p.rstate == RState::kBody && !p.discard_body) {
    if ((p.env.flags & kFlagLongBody) != 0 && p.recv_req != nullptr) {
      // Interrupted long body: re-arm the rendezvous so the replayed
      // request envelope is re-acked and the body resent.
      pending_long_recv_.put(peer, p.env.seq, p.recv_req);
    } else if ((p.env.flags & kFlagLongBody) == 0 && p.recv_req != nullptr) {
      // Interrupted eager body already matched a receive: put the receive
      // back at the FRONT of the posted queue so the replay re-matches it
      // before any later-posted receive (MPI same-TRC ordering).
      match_.add_posted_front(p.recv_req);
    }
  }
  p.rstate = RState::kEnvelope;
  p.env_have = 0;
  p.body_have = 0;
  p.body_total = 0;
  p.recv_req = nullptr;
  p.temp_body = {};
  p.discard_body = false;

  // Write side: keep control messages (acks are not retained), drop data —
  // the retained queue is the source of truth for replay. Dropped long-body
  // jobs re-arm their rendezvous handshake.
  std::deque<OutMsg> kept;
  for (OutMsg& m : p.outq) {
    if (m.is_ctl) {
      m.written = 0;  // partial writes restart on the fresh connection
      kept.push_back(std::move(m));
    } else if (m.req != nullptr && m.completes_request) {
      // In-progress long body: completes only once actually delivered.
      pending_long_send_.put(peer, m.req->seq, m.req);
    }
  }
  p.outq = std::move(kept);

  sim::Simulator& sim = stack_.host().sim();
  if (peer > rank_) {
    // We dialed this connection originally; we re-dial.
    rec.attempts = 0;
    schedule_reconnect_(peer);
  } else {
    // Passive side: wait for the peer to re-dial, bounded.
    if (!p.giveup_timer) {
      p.giveup_timer = std::make_unique<sim::Timer>(
          sim, [this, peer] { declare_dead_(peer); });
    }
    p.giveup_timer->arm(cfg_.recovery.passive_give_up);
  }
  note_activity_();
}

void TcpRpi::schedule_reconnect_(int peer) {
  PeerReplay& rec = rec_of_(peer);
  if (rec.dead) return;
  if (rec.attempts >= cfg_.recovery.max_reconnect_attempts) {
    declare_dead_(peer);
    return;
  }
  Peer& p = peers_[static_cast<std::size_t>(peer)];
  if (!p.reconnect_timer) {
    p.reconnect_timer = std::make_unique<sim::Timer>(
        stack_.host().sim(), [this, peer] { attempt_reconnect_(peer); });
  }
  sim::SimTime delay = std::min(
      cfg_.recovery.backoff_base << rec.attempts, cfg_.recovery.backoff_max);
  delay += static_cast<sim::SimTime>(cfg_.recovery.jitter *
                                     jitter_rng_.uniform() *
                                     static_cast<double>(delay));
  p.reconnect_timer->arm(delay);
}

void TcpRpi::attempt_reconnect_(int peer) {
  PeerReplay& rec = rec_of_(peer);
  if (rec.dead || !rec.down) return;
  ++rec.attempts;
  Peer& p = peers_[static_cast<std::size_t>(peer)];
  tcp::TcpSocket* s = stack_.create_socket();
  s->connect(rank_addr_(peer),
             static_cast<std::uint16_t>(base_port_ + peer));
  s->set_activity_callback([this] { note_activity_(); });
  p.sock = s;
  wire_error_callback_(peer);
  note_activity_();  // make sure advance() polls the connection state
}

void TcpRpi::accept_reconnects_() {
  if (listener_ == nullptr) return;
  while (tcp::TcpSocket* child = listener_->accept()) {
    child->set_activity_callback([this] { note_activity_(); });
    unidentified_.push_back(child);
  }
  for (auto it = unidentified_.begin(); it != unidentified_.end();) {
    std::array<std::byte, 4> idword;
    auto n = (*it)->recv(idword);
    charge_(cfg_.call_cost);
    if (n != 4) {
      if ((*it)->failed()) {
        it = unidentified_.erase(it);
      } else {
        ++it;
      }
      continue;
    }
    net::ByteReader r(idword);
    const int peer = static_cast<int>(r.u32());
    tcp::TcpSocket* s = *it;
    it = unidentified_.erase(it);
    // Only lower ranks dial us; reject nonsense and dead peers.
    if (peer < 0 || peer >= rank_ || rec_of_(peer).dead) {
      s->deactivate();
      continue;
    }
    Peer& p = peers_[static_cast<std::size_t>(peer)];
    if (!rec_of_(peer).down) {
      // The peer re-dialed before we noticed the old connection die
      // (e.g. it was restarted): tear the stale endpoint down first.
      handle_peer_down_(peer);
    }
    p.sock = s;
    wire_error_callback_(peer);
    on_reconnected_(peer);
  }
}

void TcpRpi::on_reconnected_(int peer) {
  PeerReplay& rec = rec_of_(peer);
  rec.down = false;
  rec.attempts = 0;
  ++stats_.reconnects;
  Peer& p = peers_[static_cast<std::size_t>(peer)];
  if (p.reconnect_timer) p.reconnect_timer->cancel();
  if (p.giveup_timer) p.giveup_timer->cancel();

  // Rebuild the output queue: identification word (active side), then our
  // cumulative delivered ack (lets the peer trim immediately), then the
  // unacknowledged retained messages in send order, then surviving
  // control messages.
  std::deque<OutMsg> q;
  if (peer > rank_) {
    OutMsg id;
    net::Buffer::Builder b;
    net::ByteWriter w(b.bytes());
    w.u32(static_cast<std::uint32_t>(rank_));
    id.header = std::move(b).finish();
    q.push_back(std::move(id));
  }
  {
    Envelope ack;
    ack.flags = kFlagReplayAck;
    ack.src_rank = rank_;
    ack.seq = rec.delivered_cum;
    OutMsg m;
    m.header = ack.encode_buffer();
    m.is_ctl = true;
    ++stats_.ctl_msgs;
    q.push_back(std::move(m));
  }
  rec.msgs_since_ack = 0;
  for (const RetainedMsg& r : rec.retained) {
    if (!net::seq_gt(r.seq, rec.acked_cum)) continue;
    OutMsg m;
    m.header = r.header;
    if (!r.is_long) {
      // Eager replay: envelope + the same retained body Buffer (refcount
      // bump). Long messages replay only the rendezvous envelope; the
      // receiver re-acks if it still wants it.
      m.body = net::BufferSlice{r.body};
    }
    ++stats_.replayed_msgs;
    q.push_back(std::move(m));
  }
  for (OutMsg& m : p.outq) {
    if (m.is_ctl) q.push_back(std::move(m));
  }
  p.outq = std::move(q);
  pump_writes_(peer);
  note_activity_();
}

void TcpRpi::declare_dead_(int peer) {
  PeerReplay& rec = rec_of_(peer);
  if (rec.dead) return;
  rec.dead = true;
  rec.down = true;
  ++stats_.peers_declared_dead;
  Peer& p = peers_[static_cast<std::size_t>(peer)];
  if (p.reconnect_timer) p.reconnect_timer->cancel();
  if (p.giveup_timer) p.giveup_timer->cancel();
  if (p.sock != nullptr) {
    p.sock->deactivate();
    p.sock = nullptr;
  }
  p.outq.clear();
  rec.retained.clear();

  // Complete requests that can never finish so the application does not
  // hang inside MPI_Wait; it learns of the failure via the event callback.
  auto sweep = [peer](PeerSeqMap<RpiRequest*>& map, auto on_req) {
    std::vector<std::uint32_t> seqs;
    map.for_each([&](int pr, std::uint32_t s, RpiRequest*) {
      if (pr == peer) seqs.push_back(s);
    });
    for (std::uint32_t s : seqs) {
      if (RpiRequest* req = map.take(peer, s)) on_req(req);
    }
  };
  sweep(pending_long_send_, [](RpiRequest* req) { req->done = true; });
  sweep(pending_ssend_, [](RpiRequest* req) { req->done = true; });
  sweep(pending_long_recv_, [peer](RpiRequest* req) {
    req->status.source = peer;
    req->status.count = 0;  // truncated: the body will never arrive
    req->done = true;
  });

  if (on_peer_unreachable_) on_peer_unreachable_(peer);
  note_activity_();
}

void TcpRpi::send_replay_ack_(int peer) {
  PeerReplay& rec = rec_of_(peer);
  Envelope ack;
  ack.flags = kFlagReplayAck;
  ack.src_rank = rank_;
  ack.seq = rec.delivered_cum;
  rec.msgs_since_ack = 0;
  enqueue_ctl_(peer, ack);
}

void TcpRpi::note_delivered_(int peer, std::uint32_t seq) {
  PeerReplay& rec = rec_of_(peer);
  rec.note_delivered(seq);
  if (rec.msgs_since_ack >= cfg_.recovery.ack_every && !rec.dead) {
    send_replay_ack_(peer);
  }
}

RetainedMsg* TcpRpi::find_retained_(int peer, std::uint32_t seq) {
  for (RetainedMsg& r : rec_of_(peer).retained) {
    if (r.seq == seq) return &r;
  }
  return nullptr;
}

}  // namespace sctpmpi::core
