#include "core/rpi_tcp.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>

namespace sctpmpi::core {

TcpRpi::TcpRpi(tcp::TcpStack& stack, int rank, int size, RpiConfig cfg,
               std::function<net::IpAddr(int)> rank_addr,
               std::uint16_t base_port)
    : stack_(stack),
      rank_(rank),
      size_(size),
      cfg_(cfg),
      rank_addr_(std::move(rank_addr)),
      base_port_(base_port),
      peers_(static_cast<std::size_t>(size)),
      next_seq_(static_cast<std::size_t>(size), 1) {}

void TcpRpi::charge_(sim::SimTime t) {
  if (proc_ != nullptr) proc_->charge(t);
}

// ---------------------------------------------------------------------------
// Connection setup: full mesh, lower rank connects to higher (LAM-style
// fully connected environment, paper §3.3). accept()/connect() sequencing
// provides the synchronization TCP gets "for free" (paper §3.4).
// ---------------------------------------------------------------------------

void TcpRpi::init(sim::Process& proc) {
  proc_ = &proc;
  tcp::TcpSocket* listener = stack_.create_socket();
  listener->bind(static_cast<std::uint16_t>(base_port_ + rank_));
  listener->listen();
  listener->set_activity_callback([this] { note_activity_(); });

  // Active connections to higher ranks; the 4-byte rank id identifies us.
  for (int peer = rank_ + 1; peer < size_; ++peer) {
    tcp::TcpSocket* s = stack_.create_socket();
    s->connect(rank_addr_(peer),
               static_cast<std::uint16_t>(base_port_ + peer));
    s->set_activity_callback([this] { note_activity_(); });
    peers_[static_cast<std::size_t>(peer)].sock = s;
    charge_(cfg_.call_cost);
  }

  int identified = 0;  // accepted sockets whose peer rank we know
  std::vector<bool> id_sent(static_cast<std::size_t>(size_), false);
  std::vector<tcp::TcpSocket*> unidentified;
  while (true) {
    // Send our rank id on each newly connected active socket.
    bool all_active_ready = true;
    for (int peer = rank_ + 1; peer < size_; ++peer) {
      Peer& p = peers_[static_cast<std::size_t>(peer)];
      if (!p.sock->connected()) {
        all_active_ready = false;
        continue;
      }
      if (!id_sent[static_cast<std::size_t>(peer)]) {
        OutMsg id;
        net::ByteWriter w(id.header);
        w.u32(static_cast<std::uint32_t>(rank_));
        p.outq.push_back(std::move(id));
        id_sent[static_cast<std::size_t>(peer)] = true;
        pump_writes_(peer);
      }
    }
    // Accept from lower ranks and read their identification word.
    while (tcp::TcpSocket* child = listener->accept()) {
      child->set_activity_callback([this] { note_activity_(); });
      unidentified.push_back(child);
    }
    for (auto it = unidentified.begin(); it != unidentified.end();) {
      std::array<std::byte, 4> idword;
      auto n = (*it)->recv(idword);
      charge_(cfg_.call_cost);
      if (n == 4) {
        net::ByteReader r(idword);
        const int peer = static_cast<int>(r.u32());
        peers_[static_cast<std::size_t>(peer)].sock = *it;
        ++identified;
        it = unidentified.erase(it);
      } else {
        ++it;
      }
    }
    if (all_active_ready && identified == rank_) break;
    block(proc);
  }
}

void TcpRpi::finalize(sim::Process& proc) {
  // Drain any queued output, then close sockets.
  bool pending = true;
  while (pending) {
    advance();
    pending = false;
    for (auto& p : peers_) {
      if (p.sock != nullptr && !p.outq.empty()) pending = true;
    }
    if (pending) block(proc);
  }
  for (auto& p : peers_) {
    if (p.sock != nullptr) p.sock->close();
  }
}

// ---------------------------------------------------------------------------
// Request initiation
// ---------------------------------------------------------------------------

void TcpRpi::start_send(RpiRequest* req) {
  ++stats_.sends_started;
  const int peer = req->peer;
  assert(peer != rank_ && "self-sends are handled in the Mpi facade");
  req->seq = next_seq_[static_cast<std::size_t>(peer)]++;

  Envelope env;
  env.length = static_cast<std::uint32_t>(req->send_len);
  env.tag = req->tag;
  env.context = req->context;
  env.src_rank = rank_;
  env.seq = req->seq;

  Peer& p = peers_[static_cast<std::size_t>(peer)];
  if (req->send_len <= cfg_.eager_limit) {
    // Eager send: envelope + body back-to-back (paper §2.2.2).
    env.flags = req->sync ? kFlagSsend : kFlagShort;
    OutMsg m;
    m.header = env.encode();
    m.body = req->send_buf;
    m.body_len = req->send_len;
    m.req = req;
    m.completes_request = !req->sync;  // ssend completes on the ack
    if (req->sync) pending_ssend_.put(peer, req->seq, req);
    p.outq.push_back(std::move(m));
    ++stats_.eager_msgs;
  } else {
    // Rendezvous: envelope only; the body follows after the ACK.
    env.flags = kFlagLong;
    OutMsg m;
    m.header = env.encode();
    p.outq.push_back(std::move(m));
    pending_long_send_.put(peer, req->seq, req);
    ++stats_.rendezvous_msgs;
  }
  pump_writes_(peer);
}

void TcpRpi::start_recv(RpiRequest* req) {
  ++stats_.recvs_started;
  // First check the unexpected-message buffer (paper §2.2.2).
  if (auto um = match_.match_unexpected(*req)) {
    const Envelope& env = um->env;
    if ((env.flags & kFlagLong) != 0) {
      // Buffered rendezvous envelope: now send the ACK.
      pending_long_recv_.put(env.src_rank, env.seq, req);
      Envelope ack;
      ack.flags = kFlagLongAck;
      ack.tag = env.tag;
      ack.context = env.context;
      ack.src_rank = rank_;
      ack.seq = env.seq;
      enqueue_ctl_(env.src_rank, ack);
    } else {
      deliver_matched_(req, env, um->body);
      if ((env.flags & kFlagSsend) != 0) {
        Envelope ack;
        ack.flags = kFlagSsendAck;
        ack.context = env.context;
        ack.src_rank = rank_;
        ack.seq = env.seq;
        enqueue_ctl_(env.src_rank, ack);
      }
    }
    return;
  }
  match_.add_posted(req);
}

void TcpRpi::cancel_recv(RpiRequest* req) { match_.remove_posted(req); }

void TcpRpi::deliver_matched_(RpiRequest* req, const Envelope& env,
                              std::span<const std::byte> body) {
  const std::size_t n = std::min(body.size(), req->recv_cap);
  std::copy_n(body.begin(), static_cast<std::ptrdiff_t>(n), req->recv_buf);
  const auto copy_cost = static_cast<sim::SimTime>(cfg_.rx_byte_cost_ns *
                                                   static_cast<double>(n));
  stack_.host().occupy_cpu(copy_cost);
  charge_(copy_cost);
  req->status.source = env.src_rank;
  req->status.tag = env.tag;
  req->status.count = n;
  req->done = true;
}

void TcpRpi::enqueue_ctl_(int peer, const Envelope& env) {
  OutMsg m;
  m.header = env.encode();
  peers_[static_cast<std::size_t>(peer)].outq.push_back(std::move(m));
  ++stats_.ctl_msgs;
  pump_writes_(peer);
}

void TcpRpi::enqueue_long_body_(int peer, RpiRequest* req) {
  // Second envelope followed by the long body (paper §2.2.2: "the sender
  // sends back an envelope followed by the long message body").
  Envelope env;
  env.length = static_cast<std::uint32_t>(req->send_len);
  env.tag = req->tag;
  env.context = req->context;
  env.flags = kFlagLong | kFlagLongBody;
  env.src_rank = rank_;
  env.seq = req->seq;
  OutMsg m;
  m.header = env.encode();
  m.body = req->send_buf;
  m.body_len = req->send_len;
  m.req = req;
  m.completes_request = true;
  peers_[static_cast<std::size_t>(peer)].outq.push_back(std::move(m));
  pump_writes_(peer);
}

// ---------------------------------------------------------------------------
// Progression
// ---------------------------------------------------------------------------

void TcpRpi::advance() {
  for (int peer = 0; peer < size_; ++peer) {
    if (peer == rank_ || peers_[static_cast<std::size_t>(peer)].sock == nullptr)
      continue;
    pump_writes_(peer);
    pump_reads_(peer);
  }
}

void TcpRpi::block(sim::Process& proc) {
  if (activity_) {
    activity_ = false;
    return;
  }
  ++stats_.blocks;
  // Suspend until any socket activity callback fires. CPU debt must be
  // flushed before committing to the suspension: a wakeup firing during
  // the debt sleep would otherwise be consumed by it (lost-wakeup).
  blocked_proc_ = &proc;
  proc.flush_charge();
  if (!activity_) proc.suspend();
  blocked_proc_ = nullptr;
  activity_ = false;
}

void TcpRpi::debug_dump() const {
  std::printf("rank %d: posted=%zu unexpected=%zu longS=%zu longR=%zu\n",
              rank_, match_.posted_count(), match_.unexpected_count(),
              pending_long_send_.size(), pending_long_recv_.size());
  for (int peer = 0; peer < size_; ++peer) {
    const Peer& p = peers_[static_cast<std::size_t>(peer)];
    if (p.sock == nullptr) continue;
    std::printf(
        "  peer %d: outq=%zu head_written=%zu rstate=%d body=%zu/%zu "
        "sock[%s cwnd=%u wnd_known=? buf=%zu readable=%d writable=%d]\n",
        peer, p.outq.size(), p.outq.empty() ? 0 : p.outq.front().written,
        static_cast<int>(p.rstate), p.body_have, p.body_total,
        tcp::to_string(p.sock->state()), p.sock->cwnd(),
        p.sock->send_buffered(), (int)p.sock->readable(),
        (int)p.sock->writable());
  }
}

void TcpRpi::pump_writes_(int peer) {
  Peer& p = peers_[static_cast<std::size_t>(peer)];
  if (p.sock == nullptr) return;
  while (!p.outq.empty()) {
    OutMsg& m = p.outq.front();
    // Header and body go out in one writev-style call so that small
    // messages coalesce into a single segment.
    while (m.written < m.header.size()) {
      auto n = p.sock->send_gather(std::span(m.header).subspan(m.written),
                                   std::span(m.body, m.body_len));
      charge_(cfg_.call_cost);
      if (n <= 0) return;
      m.written += static_cast<std::size_t>(n);
    }
    while (m.written < m.header.size() + m.body_len) {
      const std::size_t off = m.written - m.header.size();
      auto n = p.sock->send(
          std::span(m.body, m.body_len).subspan(off));
      charge_(cfg_.call_cost);
      if (n <= 0) return;
      m.written += static_cast<std::size_t>(n);
    }
    if (m.completes_request && m.req != nullptr) {
      m.req->done = true;
    }
    p.outq.pop_front();
  }
}

void TcpRpi::pump_reads_(int peer) {
  Peer& p = peers_[static_cast<std::size_t>(peer)];
  if (p.sock == nullptr) return;
  while (true) {
    if (p.rstate == RState::kEnvelope) {
      auto n = p.sock->recv(
          std::span(p.env_buf).subspan(p.env_have));
      charge_(cfg_.call_cost);
      if (n <= 0) return;
      p.env_have += static_cast<std::size_t>(n);
      if (p.env_have < kEnvelopeBytes) continue;
      p.env_have = 0;
      p.env = Envelope::decode(p.env_buf);
      on_envelope_(peer);
    } else {
      // Reading a message body into either the matched receive buffer or
      // the unexpected-message temp buffer.
      std::byte* dest;
      std::size_t cap;
      if (p.recv_req != nullptr) {
        dest = p.recv_req->recv_buf;
        cap = p.recv_req->recv_cap;
      } else {
        dest = p.temp_body.data();
        cap = p.temp_body.size();
      }
      std::array<std::byte, 16384> sink;  // overflow beyond capacity
      while (p.body_have < p.body_total) {
        std::span<std::byte> into;
        if (p.body_have < cap) {
          into = std::span(dest, cap).subspan(
              p.body_have, std::min(cap - p.body_have,
                                    p.body_total - p.body_have));
        } else {
          into = std::span(sink).subspan(
              0, std::min(sink.size(), p.body_total - p.body_have));
        }
        auto n = p.sock->recv(into);
        charge_(cfg_.call_cost);
        if (n <= 0) return;
        p.body_have += static_cast<std::size_t>(n);
        // Byte-stream reassembly copy (middleware-level, paper §3.2.4):
        // occupies the node's CPU, contending with the network stack.
        const auto copy_cost = static_cast<sim::SimTime>(
            cfg_.rx_byte_cost_ns * static_cast<double>(n));
        stack_.host().occupy_cpu(copy_cost);
        charge_(copy_cost);
      }
      finish_body_(peer);
    }
  }
}

void TcpRpi::on_envelope_(int peer) {
  Peer& p = peers_[static_cast<std::size_t>(peer)];
  const Envelope& env = p.env;

  if ((env.flags & kFlagLongAck) != 0) {
    if (RpiRequest* req = pending_long_send_.take(peer, env.seq)) {
      enqueue_long_body_(peer, req);
    }
    return;
  }
  if ((env.flags & kFlagSsendAck) != 0) {
    if (RpiRequest* req = pending_ssend_.take(peer, env.seq)) req->done = true;
    return;
  }
  if ((env.flags & kFlagLongBody) != 0) {
    // Second envelope of the rendezvous: body follows on this stream.
    p.recv_req = pending_long_recv_.take(peer, env.seq);
    p.body_total = env.length;
    p.body_have = 0;
    p.temp_body.clear();
    p.rstate = RState::kBody;
    return;
  }
  if ((env.flags & kFlagLong) != 0) {
    // Rendezvous request. Match now or buffer the envelope.
    if (RpiRequest* req = match_.match_posted(env)) {
      pending_long_recv_.put(peer, env.seq, req);
      Envelope ack;
      ack.flags = kFlagLongAck;
      ack.tag = env.tag;
      ack.context = env.context;
      ack.src_rank = rank_;
      ack.seq = env.seq;
      enqueue_ctl_(peer, ack);
    } else {
      ++stats_.unexpected_msgs;
      match_.add_unexpected(UnexpectedMsg{env, {}});
    }
    return;
  }

  // Eager short (possibly synchronous): body of env.length follows.
  p.recv_req = match_.match_posted(env);
  p.body_total = env.length;
  p.body_have = 0;
  if (p.recv_req == nullptr) {
    p.temp_body.assign(env.length, std::byte{0});
  }
  if (env.length == 0) {
    finish_body_(peer);
  } else {
    p.rstate = RState::kBody;
  }
}

void TcpRpi::finish_body_(int peer) {
  Peer& p = peers_[static_cast<std::size_t>(peer)];
  const Envelope& env = p.env;
  const bool needs_ssend_ack = (env.flags & kFlagSsend) != 0;

  // A matching receive may have been posted while the body was in flight
  // on the byte stream; re-match now so a LATER message cannot overtake
  // this one through the posted queue (MPI same-TRC ordering).
  if (p.recv_req == nullptr) {
    if (RpiRequest* req = match_.match_posted(env)) {
      const std::size_t n = std::min(p.temp_body.size(), req->recv_cap);
      std::copy_n(p.temp_body.begin(), static_cast<std::ptrdiff_t>(n),
                  req->recv_buf);
      p.recv_req = req;
    }
  }

  if (p.recv_req != nullptr) {
    RpiRequest* req = p.recv_req;
    req->status.source = env.src_rank;
    req->status.tag = env.tag;
    req->status.count = std::min(p.body_total, req->recv_cap);
    req->done = true;
    if (needs_ssend_ack) {
      Envelope ack;
      ack.flags = kFlagSsendAck;
      ack.context = env.context;
      ack.src_rank = rank_;
      ack.seq = env.seq;
      enqueue_ctl_(peer, ack);
    }
  } else {
    ++stats_.unexpected_msgs;
    match_.add_unexpected(UnexpectedMsg{env, std::move(p.temp_body)});
    // ssend ack is deferred until the receive is posted (start_recv).
  }
  p.recv_req = nullptr;
  p.temp_body = {};
  p.rstate = RState::kEnvelope;
}

}  // namespace sctpmpi::core
