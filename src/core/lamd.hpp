// LAM's out-of-band daemon layer (paper §3.5.3).
//
// LAM runs a user-level daemon on every node for job monitoring, remote
// I/O and cleanup when a job aborts. Stock LAM carries this control
// traffic over UDP; the paper's authors moved it to SCTP "so that the
// entire execution now uses SCTP and all the components in the LAM
// environment can take advantage of the features of SCTP".
//
// This module implements both variants: the master daemon (the mpirun
// node) monitors per-node status pings and can broadcast an abort/cleanup
// order. Over UDP every message is fire-and-forget; over SCTP the control
// channel is a reliable association with failure notifications.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "net/udp.hpp"
#include "sctp/socket.hpp"
#include "sim/simulator.hpp"

namespace sctpmpi::core {

enum class CtlTransport { kUdp, kSctp };

struct LamdConfig {
  CtlTransport transport = CtlTransport::kSctp;
  std::uint16_t port = 9900;
  sim::SimTime status_interval = 500 * sim::kMillisecond;
  /// A node missing status for this long is presumed dead by the master.
  sim::SimTime dead_after = 2 * sim::kSecond;
};

struct LamdStats {
  std::uint64_t status_sent = 0;
  std::uint64_t status_received = 0;
  std::uint64_t aborts_sent = 0;
  bool abort_received = false;
};

/// One daemon per node. Node 0 is the master (the mpirun node).
class LamDaemon {
 public:
  /// The daemon owns its control socket on `host`; `peer_addr(i)` resolves
  /// node i's address. Construct all daemons, then start() each.
  LamDaemon(net::Host& host, int node, int nodes, LamdConfig cfg,
            std::function<net::IpAddr(int)> peer_addr,
            sctp::SctpStack* sctp_stack, net::UdpStack* udp_stack);
  ~LamDaemon();

  /// Starts status pings (slaves) / liveness tracking (master).
  void start();

  bool is_master() const { return node_ == 0; }

  // ---- master-side queries ---------------------------------------------
  /// True if the master has heard from `node` within cfg.dead_after (or
  /// its SCTP association is still up and never reported lost). A node the
  /// master has never heard from gets a grace period of cfg.dead_after
  /// from start() — without it a slow starter would be declared dead at
  /// t=0 before its first status ping could possibly arrive.
  bool is_alive(int node) const;
  int alive_count() const;

  /// Master-side push notification: fires once per alive->dead transition
  /// of a node (and re-fires if the node revives and dies again). Checked
  /// on every master status tick and immediately on an SCTP kCommLost.
  void set_node_dead_callback(std::function<void(int)> cb) {
    on_node_dead_ = std::move(cb);
  }

  /// Broadcasts an abort/cleanup order to every node (paper: "carrying
  /// out cleanup when a user aborts an MPI process").
  void broadcast_abort();

  // ---- slave-side queries -------------------------------------------------
  bool abort_received() const { return stats_.abort_received; }

  const LamdStats& stats() const { return stats_; }

 private:
  enum MsgType : std::uint8_t { kStatus = 1, kAbort = 2 };

  void send_ctl_(int dst_node, MsgType type);
  void on_ctl_(int from_node, MsgType type);
  void on_status_timer_();
  void pump_sctp_();
  void pump_udp_();
  void check_transitions_();

  net::Host& host_;
  int node_;
  int nodes_;
  LamdConfig cfg_;
  std::function<net::IpAddr(int)> peer_addr_;

  sctp::SctpStack* sctp_stack_ = nullptr;
  sctp::SctpSocket* sctp_sock_ = nullptr;
  std::vector<sctp::AssocId> node_assoc_;   // master + slaves: per node
  std::map<sctp::AssocId, int> assoc_node_;

  net::UdpStack* udp_stack_ = nullptr;
  net::UdpSocket* udp_sock_ = nullptr;

  sim::Timer status_timer_;
  std::vector<sim::SimTime> last_seen_;   // master: per node
  std::vector<bool> comm_lost_;           // master, SCTP only
  sim::SimTime start_time_ = 0;           // grace-period anchor
  std::vector<bool> reported_dead_;       // transition dedup for callback
  std::function<void(int)> on_node_dead_;

  LamdStats stats_;
};

}  // namespace sctpmpi::core
