#include "tcp/wire.hpp"

#include <algorithm>

namespace sctpmpi::tcp {

namespace {
// Option kinds.
constexpr std::uint8_t kOptEnd = 0;
constexpr std::uint8_t kOptNop = 1;
constexpr std::uint8_t kOptMss = 2;
constexpr std::uint8_t kOptWscale = 3;
constexpr std::uint8_t kOptSackPermitted = 4;
constexpr std::uint8_t kOptSack = 5;

constexpr std::uint8_t kFlagFin = 0x01;
constexpr std::uint8_t kFlagSyn = 0x02;
constexpr std::uint8_t kFlagRst = 0x04;
constexpr std::uint8_t kFlagPsh = 0x08;
constexpr std::uint8_t kFlagAck = 0x10;

std::size_t options_bytes(const Segment& s) {
  std::size_t n = 0;
  if (s.mss_opt != 0) n += 4;
  if (s.sack_permitted) n += 2;
  if (!s.sacks.empty()) n += 2 + s.sacks.size() * 8;
  // Pad to a 4-byte boundary as data offset counts 32-bit words.
  return (n + 3) & ~std::size_t{3};
}

// Header + options into `out` (everything up to, not including, payload).
void encode_header(const Segment& s, std::vector<std::byte>& out) {
  out.clear();
  out.reserve(s.wire_bytes());
  net::ByteWriter w(out);
  w.u16(s.sport);
  w.u16(s.dport);
  w.u32(s.seq);
  w.u32(s.ack);
  const std::size_t hdr = s.header_bytes();
  const auto data_off = static_cast<std::uint8_t>(hdr / 4);
  w.u8(static_cast<std::uint8_t>(data_off << 4));
  std::uint8_t flags = 0;
  if (s.fin) flags |= kFlagFin;
  if (s.syn) flags |= kFlagSyn;
  if (s.rst) flags |= kFlagRst;
  if (s.psh) flags |= kFlagPsh;
  if (s.ack_flag) flags |= kFlagAck;
  w.u8(flags);
  // Window: the real field is 16-bit; we emulate window scaling by
  // saturating on encode and carrying the true value in a 2-byte urgent
  // field repurpose... no: keep wire-faithful by scaling with a fixed
  // shift of 6 (like a negotiated wscale=6), lossy by <64 bytes.
  w.u16(static_cast<std::uint16_t>(
      std::min<std::uint32_t>(s.wnd >> 6, 0xFFFF)));
  w.u16(0);  // checksum (offloaded in the testbed; not modeled)
  w.u16(0);  // urgent pointer
  // Options.
  std::size_t opt_start = out.size();
  if (s.mss_opt != 0) {
    w.u8(kOptMss);
    w.u8(4);
    w.u16(s.mss_opt);
  }
  if (s.sack_permitted) {
    w.u8(kOptSackPermitted);
    w.u8(2);
  }
  if (!s.sacks.empty()) {
    w.u8(kOptSack);
    w.u8(static_cast<std::uint8_t>(2 + s.sacks.size() * 8));
    for (const auto& b : s.sacks) {
      w.u32(b.left);
      w.u32(b.right);
    }
  }
  while ((out.size() - opt_start) % 4 != 0) w.u8(kOptNop);
}

// Parses everything except the payload; returns the payload range.
std::pair<std::size_t, std::size_t> decode_header(
    std::span<const std::byte> wire, Segment& s) {
  net::ByteReader r(wire);
  s.sport = r.u16();
  s.dport = r.u16();
  s.seq = r.u32();
  s.ack = r.u32();
  const std::uint8_t off_byte = r.u8();
  const std::size_t hdr = static_cast<std::size_t>(off_byte >> 4) * 4;
  if (hdr < kTcpBaseHeaderBytes || hdr > wire.size())
    throw net::DecodeError("bad TCP data offset");
  const std::uint8_t flags = r.u8();
  s.fin = (flags & kFlagFin) != 0;
  s.syn = (flags & kFlagSyn) != 0;
  s.rst = (flags & kFlagRst) != 0;
  s.psh = (flags & kFlagPsh) != 0;
  s.ack_flag = (flags & kFlagAck) != 0;
  s.wnd = std::uint32_t{r.u16()} << 6;
  r.skip(4);  // checksum + urgent
  // Options.
  while (r.position() < hdr) {
    const std::uint8_t kind = r.u8();
    if (kind == kOptEnd) break;
    if (kind == kOptNop) continue;
    const std::uint8_t len = r.u8();
    if (len < 2) throw net::DecodeError("bad TCP option length");
    switch (kind) {
      case kOptMss:
        s.mss_opt = r.u16();
        break;
      case kOptSackPermitted:
        s.sack_permitted = true;
        break;
      case kOptSack: {
        const std::size_t nblocks = (len - 2) / 8;
        for (std::size_t i = 0; i < nblocks; ++i) {
          SackBlock b;
          b.left = r.u32();
          b.right = r.u32();
          s.sacks.push_back(b);
        }
        break;
      }
      case kOptWscale:
      default:
        r.skip(len - 2);
        break;
    }
  }
  if (r.position() < hdr) r.skip(hdr - r.position());
  return {r.position(), r.remaining()};
}
}  // namespace

std::size_t Segment::header_bytes() const {
  return kTcpBaseHeaderBytes + options_bytes(*this);
}

void Segment::encode_into(std::vector<std::byte>& out) const {
  encode_header(*this, out);
  payload.append_to(out);
}

void Segment::encode_into(net::Buffer::Builder& out) const {
  encode_header(*this, out.bytes());
  payload.append_to(out);
}

std::vector<std::byte> Segment::encode() const {
  std::vector<std::byte> out;
  encode_into(out);
  return out;
}

Segment Segment::decode(std::span<const std::byte> wire) {
  Segment s;
  const auto [pos, len] = decode_header(wire, s);
  s.payload = net::SliceChain::copy_of(wire.subspan(pos, len));
  return s;
}

Segment Segment::decode(const net::Buffer& wire) {
  Segment s;
  const auto [pos, len] = decode_header(wire.span(), s);
  if (len > 0) s.payload.push_back(net::BufferSlice{wire, pos, len});
  return s;
}

}  // namespace sctpmpi::tcp
