// TCP stack tuning knobs, defaulted to the paper's experimental settings
// (FreeBSD 5.3-era stack: SACK enabled, Nagle disabled, 220 KiB socket
// buffers, RFC 2988 retransmission timer, Reno/NewReno congestion control
// with ACK-counted window growth).
#pragma once

#include <cstddef>

#include "sim/time.hpp"

namespace sctpmpi::tcp {

struct TcpConfig {
  std::size_t mss = 1460;
  std::size_t sndbuf = 220 * 1024;  // paper §4 setting 1
  std::size_t rcvbuf = 220 * 1024;
  bool nagle = false;               // paper §4 setting 2: disabled in LAM-TCP
  bool sack_enabled = true;         // paper §4 setting 3
  unsigned max_sack_blocks = 3;     // era TCP option space limit (paper §4.1.1)
  bool delayed_ack = true;
  sim::SimTime delack_delay = 100 * sim::kMillisecond;  // FreeBSD default
  sim::SimTime min_rto = sim::kSecond;        // RFC 2988 lower bound
  sim::SimTime initial_rto = 3 * sim::kSecond;
  sim::SimTime max_rto = 64 * sim::kSecond;
  unsigned init_cwnd_segments = 2;  // RFC 2581
  unsigned dupack_threshold = 3;
  unsigned max_syn_retries = 8;
  unsigned max_data_retries = 12;
  sim::SimTime time_wait = 500 * sim::kMillisecond;  // shortened 2*MSL
  bool idle_cwnd_restart = true;    // RFC 2581 §4.1 after idle > RTO
  /// Modeled stack CPU per segment each way (checksums are offloaded to the
  /// NIC in the paper's testbed, so there is no per-byte checksum cost).
  sim::SimTime cpu_per_packet = 1200;  // ns
};

}  // namespace sctpmpi::tcp
