// TCP segment wire format (RFC 793 header + the options this stack speaks:
// MSS, SACK-permitted, SACK blocks). Segments are serialized into the IP
// packet payload and parsed back on receive, so header/option overheads are
// charged on the wire exactly as in the real protocol.
//
// The payload is a net::SliceChain: segmentation gathers slices straight
// out of the send queue, encode writes header bytes once and appends the
// payload scatter-gather style, and decode over a net::Buffer retains
// slices of the wire block instead of copying the payload out.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "net/buffer.hpp"
#include "net/bytes.hpp"
#include "net/slice.hpp"

namespace sctpmpi::tcp {

inline constexpr std::size_t kTcpBaseHeaderBytes = 20;
inline constexpr unsigned kMaxSackBlocks = 3;  // era-typical TCP SACK limit

struct SackBlock {
  std::uint32_t left = 0;   // first sequence of the block
  std::uint32_t right = 0;  // one past the last sequence
  bool operator==(const SackBlock&) const = default;
};

struct Segment {
  std::uint16_t sport = 0;
  std::uint16_t dport = 0;
  std::uint32_t seq = 0;
  std::uint32_t ack = 0;
  bool fin = false;
  bool syn = false;
  bool rst = false;
  bool psh = false;
  bool ack_flag = false;
  std::uint32_t wnd = 0;  // we allow >64K windows (implicit scaling)
  // Options.
  std::uint16_t mss_opt = 0;        // 0 = absent
  bool sack_permitted = false;
  std::vector<SackBlock> sacks;
  net::SliceChain payload;

  std::size_t header_bytes() const;
  std::size_t wire_bytes() const { return header_bytes() + payload.size(); }

  /// Serializes into a fresh buffer.
  std::vector<std::byte> encode() const;
  /// Serializes into `out` (cleared first), reusing its capacity.
  void encode_into(std::vector<std::byte>& out) const;
  /// Scatter-gather serialization into a wire Builder: header bytes are
  /// written once, payload slices are appended (the single send-side
  /// payload copy). Used by the transmit path.
  void encode_into(net::Buffer::Builder& out) const;
  /// Parses a segment; throws net::DecodeError on malformed input. The
  /// payload is copied out of `wire` (callers holding only a raw span).
  static Segment decode(std::span<const std::byte> wire);
  /// Disambiguates vector arguments (convertible to both span and Buffer).
  static Segment decode(const std::vector<std::byte>& wire) {
    return decode(std::span<const std::byte>{wire});
  }
  /// Zero-copy parse: the payload chain retains slices of `wire`'s block.
  static Segment decode(const net::Buffer& wire);
};

}  // namespace sctpmpi::tcp
