// TCP segment wire format (RFC 793 header + the options this stack speaks:
// MSS, SACK-permitted, SACK blocks). Segments are serialized into the IP
// packet payload and parsed back on receive, so header/option overheads are
// charged on the wire exactly as in the real protocol.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "net/bytes.hpp"

namespace sctpmpi::tcp {

inline constexpr std::size_t kTcpBaseHeaderBytes = 20;
inline constexpr unsigned kMaxSackBlocks = 3;  // era-typical TCP SACK limit

struct SackBlock {
  std::uint32_t left = 0;   // first sequence of the block
  std::uint32_t right = 0;  // one past the last sequence
  bool operator==(const SackBlock&) const = default;
};

struct Segment {
  std::uint16_t sport = 0;
  std::uint16_t dport = 0;
  std::uint32_t seq = 0;
  std::uint32_t ack = 0;
  bool fin = false;
  bool syn = false;
  bool rst = false;
  bool psh = false;
  bool ack_flag = false;
  std::uint32_t wnd = 0;  // we allow >64K windows (implicit scaling)
  // Options.
  std::uint16_t mss_opt = 0;        // 0 = absent
  bool sack_permitted = false;
  std::vector<SackBlock> sacks;
  std::vector<std::byte> payload;

  std::size_t header_bytes() const;
  std::size_t wire_bytes() const { return header_bytes() + payload.size(); }

  /// Serializes into a fresh buffer.
  std::vector<std::byte> encode() const;
  /// Serializes into `out` (cleared first), reusing its capacity: the
  /// transmit path encodes into pooled net::Buffer blocks allocation-free.
  void encode_into(std::vector<std::byte>& out) const;
  /// Parses a segment; throws net::DecodeError on malformed input.
  static Segment decode(std::span<const std::byte> wire);
};

}  // namespace sctpmpi::tcp
