// TCP socket and per-host TCP stack.
//
// Implements the connection-oriented byte-stream semantics the paper's
// LAM-TCP module runs on: three-way handshake, sliding-window flow control
// with zero-window persistence, delayed ACKs, Nagle (configurable),
// RFC 2018 SACK limited to a small option block count, Reno/NewReno
// congestion control with ACK-counted growth, RFC 2988 RTO with exponential
// backoff, and orderly FIN teardown. The app-facing API mirrors
// non-blocking BSD sockets (send/recv return kAgain when they would block).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "net/flat_map.hpp"
#include "net/host.hpp"
#include "net/packet.hpp"
#include "net/seq_ranges.hpp"
#include "net/slice.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "tcp/config.hpp"
#include "tcp/wire.hpp"

namespace sctpmpi::tcp {

class TcpStack;

/// Result of a would-block socket operation.
inline constexpr std::ptrdiff_t kAgain = -1;
/// Result of an operation on a reset/failed connection.
inline constexpr std::ptrdiff_t kError = -2;

enum class TcpState {
  kClosed,
  kListen,
  kSynSent,
  kSynRcvd,
  kEstablished,
  kFinWait1,
  kFinWait2,
  kCloseWait,
  kClosing,
  kLastAck,
  kTimeWait,
};

const char* to_string(TcpState s);

struct TcpStats {
  std::uint64_t bytes_sent = 0;       // app payload accepted onto the wire
  std::uint64_t bytes_received = 0;   // app payload delivered in order
  std::uint64_t segments_sent = 0;
  std::uint64_t segments_received = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t fast_retransmits = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t dupacks_received = 0;
};

class TcpSocket {
 public:
  TcpSocket(TcpStack& stack, TcpConfig cfg);

  // ---- application API (non-blocking) ---------------------------------
  void bind(std::uint16_t port);
  /// Binds a local source address as well as the port. Outgoing segments
  /// carry `addr` as their source even when it is not an interface address
  /// of the host — this is how a DSR backend answers as the service VIP
  /// (see net/load_balancer.hpp). Accepted children inherit it.
  void bind(net::IpAddr addr, std::uint16_t port) {
    laddr_ = addr;
    bind(port);
  }
  void listen();
  /// Pops an established connection off the accept queue, or nullptr.
  TcpSocket* accept();
  void connect(net::IpAddr dst, std::uint16_t dport);
  /// Appends data to the send buffer; returns bytes accepted, kAgain if the
  /// buffer is full, kError after reset.
  std::ptrdiff_t send(std::span<const std::byte> data);
  /// writev-style gather send: appends a then b as one operation, so small
  /// headers coalesce with their payload into one segment (LAM-TCP sends
  /// envelope+body back-to-back this way).
  std::ptrdiff_t send_gather(std::span<const std::byte> a,
                             std::span<const std::byte> b);
  /// Zero-copy gather send: queues slice descriptors of immutable Buffers
  /// (no payload memcpy). Same partial-accept byte accounting as the span
  /// overload; the caller advances its slices by the returned count.
  std::ptrdiff_t send_gather(const net::BufferSlice& a,
                             const net::BufferSlice& b);
  std::ptrdiff_t send(const net::BufferSlice& a) {
    return send_gather(a, net::BufferSlice{});
  }
  /// Reads in-order data; returns bytes read, 0 at EOF, kAgain if no data,
  /// kError after reset.
  std::ptrdiff_t recv(std::span<std::byte> out);
  void close();
  void abort();  // send RST, drop everything
  /// Local teardown without wire traffic: used when a recovered connection
  /// supersedes this one and the old peer endpoint is already gone (an RST
  /// would be addressed to nobody).
  void deactivate();

  bool readable() const {
    return !recv_q_.empty() || (fin_received_ && ooo_.empty()) || failed_;
  }
  bool writable() const {
    return (state_ == TcpState::kEstablished ||
            state_ == TcpState::kCloseWait) &&
           snd_buf_.free_space() > 0 && !fin_pending_ && !failed_;
  }
  bool has_pending_accept() const { return !accept_q_.empty(); }
  bool connected() const { return state_ == TcpState::kEstablished; }
  bool failed() const { return failed_; }
  /// Why fail_() fired; empty string while !failed().
  const char* failure_reason() const { return failure_reason_; }
  TcpState state() const { return state_; }
  std::uint16_t local_port() const { return lport_; }
  net::IpAddr remote_addr() const { return raddr_; }
  std::uint16_t remote_port() const { return rport_; }
  const TcpStats& stats() const { return stats_; }
  const TcpConfig& config() const { return cfg_; }

  /// Bytes currently queued in the send buffer (sent-but-unacked + unsent).
  std::size_t send_buffered() const { return snd_buf_.size(); }
  std::uint32_t cwnd() const { return cwnd_; }
  std::uint32_t ssthresh() const { return ssthresh_; }

  /// Invoked whenever this socket's readability/writability/accept queue
  /// may have changed; progress engines hook their wakeups here.
  void set_activity_callback(std::function<void()> cb) {
    on_activity_ = std::move(cb);
  }

  /// Invoked exactly once when the connection fails terminally (RST
  /// received, retransmission limits exceeded): the explicit upward error
  /// notification the recovery layer keys on. Fires after `failed()`
  /// becomes observable.
  void set_error_callback(std::function<void(const char*)> cb) {
    on_error_ = std::move(cb);
  }

 private:
  friend class TcpStack;

  // ---- segment input ---------------------------------------------------
  void on_segment(Segment&& seg, net::IpAddr src);
  void process_ack_(const Segment& seg);
  void process_payload_(Segment& seg);
  void process_fin_(const Segment& seg);
  void enter_established_();
  void fail_(const char* reason);

  // ---- output ----------------------------------------------------------
  void try_output_();
  void send_data_segment_(std::uint32_t seq, std::size_t len, bool rtx);
  void send_flags_(bool syn, bool fin_flag);
  void ack_now_();
  void schedule_ack_();
  void maybe_send_fin_();
  void send_rst_();
  std::vector<SackBlock> build_sack_blocks_() const;

  // ---- congestion / recovery -------------------------------------------
  void on_new_ack_(std::uint32_t acked_bytes, bool was_in_recovery);
  void on_dupack_(const Segment& seg);
  void merge_peer_sacks_(const std::vector<SackBlock>& blocks);
  bool range_sacked_(std::uint32_t seq, std::size_t len) const;
  std::optional<std::uint32_t> next_rtx_hole_() const;
  void retransmit_one_(std::uint32_t seq);
  std::uint32_t flight_size_() const { return snd_nxt_ - snd_una_; }
  std::size_t sent_unacked_data_() const;

  // ---- timers ------------------------------------------------------------
  void on_rtx_timeout_();
  void on_persist_timeout_();
  void arm_rtx_();
  void update_rtt_(sim::SimTime measured);
  void enter_time_wait_();
  void notify_activity_() {
    if (on_activity_) on_activity_();
  }

  TcpStack& stack_;
  TcpConfig cfg_;
  TcpState state_ = TcpState::kClosed;
  bool failed_ = false;
  const char* failure_reason_ = "";
  std::function<void(const char*)> on_error_;

  std::uint16_t lport_ = 0;
  net::IpAddr laddr_;  // source address override; any = route default
  net::IpAddr raddr_;
  std::uint16_t rport_ = 0;
  TcpSocket* parent_listener_ = nullptr;
  std::deque<TcpSocket*> accept_q_;

  // Send side. snd_buf_ holds [snd_una_, snd_una_ + snd_buf_.size()) as
  // zero-copy slices; segmentation gathers sub-ranges without touching
  // payload bytes.
  net::SliceQueue snd_buf_;
  std::uint32_t iss_ = 0;
  std::uint32_t snd_una_ = 0;
  std::uint32_t snd_nxt_ = 0;
  std::uint32_t snd_wnd_ = 0;
  bool fin_pending_ = false;  // close() called with data still queued
  bool fin_sent_ = false;
  std::uint32_t fin_seq_ = 0;
  sim::SimTime last_send_time_ = 0;

  // Congestion control.
  std::uint32_t cwnd_ = 0;
  std::uint32_t ssthresh_ = 0x7FFFFFFF;
  unsigned dupacks_ = 0;
  bool fast_recovery_ = false;
  std::uint32_t recover_ = 0;
  net::SeqRuns scoreboard_;  // peer-reported SACKed ranges (run-length)
  bool peer_sack_ok_ = false;

  // RTT estimation (Karn's algorithm: one unretransmitted sample at a time).
  bool rtt_sampling_ = false;
  std::uint32_t rtt_seq_ = 0;
  sim::SimTime rtt_start_ = 0;
  sim::SimTime srtt_ = 0;
  sim::SimTime rttvar_ = 0;
  sim::SimTime rto_;
  unsigned rtx_shift_ = 0;  // backoff exponent
  unsigned retries_ = 0;

  // Receive side.
  net::SliceQueue recv_q_;
  std::uint32_t rcv_nxt_ = 0;
  /// One buffered out-of-order byte range: a chain of retained wire-buffer
  /// slices, so buffering and merging never copy payload.
  struct OooSegment {
    std::uint32_t seq = 0;
    net::SliceChain data;
    std::uint32_t end() const {
      return seq + static_cast<std::uint32_t>(data.size());
    }
  };
  void insert_ooo_(std::uint32_t seq, net::SliceChain&& data);
  // Out-of-order reassembly: segments kept sorted in serial order with
  // exactly-adjacent ranges merged on insert (slice splices in both
  // directions — no byte moves), so SACK blocks read straight off the list
  // and the pull-across on a filled hole moves whole ranges.
  std::vector<OooSegment> ooo_;
  std::size_t ooo_bytes_ = 0;
  bool fin_received_ = false;
  unsigned segs_since_ack_ = 0;
  std::uint32_t last_advertised_wnd_ = 0;

  sim::Timer rtx_timer_;
  sim::Timer persist_timer_;
  sim::Timer delack_timer_;
  sim::Timer time_wait_timer_;

  TcpStats stats_;
  std::function<void()> on_activity_;
};

/// Per-host TCP: demultiplexes incoming segments to sockets and owns them.
class TcpStack : public net::ProtocolHandler {
 public:
  TcpStack(net::Host& host, TcpConfig cfg, sim::Rng rng);

  /// Creates a socket owned by this stack.
  TcpSocket* create_socket();
  net::Host& host() { return host_; }
  const TcpConfig& config() const { return cfg_; }

  void on_ip_packet(net::Packet&& pkt) override;

 private:
  friend class TcpSocket;

  /// Demux key (lport, raddr, rport) packed into one nonzero word: lport
  /// occupies the top 16 bits and bound sockets never have lport 0.
  static std::uint64_t conn_key_(std::uint16_t lport, std::uint32_t raddr,
                                 std::uint16_t rport) {
    return (static_cast<std::uint64_t>(lport) << 48) |
           (static_cast<std::uint64_t>(raddr) << 16) |
           static_cast<std::uint64_t>(rport);
  }

  void transmit_(Segment&& seg, net::IpAddr dst, net::IpAddr src,
                 bool rtx = false);
  void register_conn_(TcpSocket* s);
  void register_listener_(TcpSocket* s);
  std::uint16_t ephemeral_port_();
  std::uint32_t random_iss_() { return static_cast<std::uint32_t>(rng_.next()); }

  net::Host& host_;
  TcpConfig cfg_;
  sim::Rng rng_;
  std::vector<std::unique_ptr<TcpSocket>> sockets_;
  // O(1) receive-path flow demux (one probe per packet, no node allocs).
  net::FlatMap64<TcpSocket*> conns_;
  net::FlatMap64<TcpSocket*> listeners_;
  std::uint16_t next_ephemeral_ = 49152;
};

}  // namespace sctpmpi::tcp
