#include "tcp/socket.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cassert>
#include <utility>

namespace sctpmpi::tcp {

using net::seq_diff;
using net::seq_geq;
using net::seq_gt;
using net::seq_leq;
using net::seq_lt;

const char* to_string(TcpState s) {
  switch (s) {
    case TcpState::kClosed: return "CLOSED";
    case TcpState::kListen: return "LISTEN";
    case TcpState::kSynSent: return "SYN_SENT";
    case TcpState::kSynRcvd: return "SYN_RCVD";
    case TcpState::kEstablished: return "ESTABLISHED";
    case TcpState::kFinWait1: return "FIN_WAIT_1";
    case TcpState::kFinWait2: return "FIN_WAIT_2";
    case TcpState::kCloseWait: return "CLOSE_WAIT";
    case TcpState::kClosing: return "CLOSING";
    case TcpState::kLastAck: return "LAST_ACK";
    case TcpState::kTimeWait: return "TIME_WAIT";
  }
  return "?";
}

TcpSocket::TcpSocket(TcpStack& stack, TcpConfig cfg)
    : stack_(stack),
      cfg_(cfg),
      snd_buf_(cfg.sndbuf),
      rto_(cfg.initial_rto),
      recv_q_(cfg.rcvbuf),
      rtx_timer_(stack.host().sim(), [this] { on_rtx_timeout_(); }),
      persist_timer_(stack.host().sim(), [this] { on_persist_timeout_(); }),
      delack_timer_(stack.host().sim(), [this] { ack_now_(); }),
      time_wait_timer_(stack.host().sim(), [this] {
        state_ = TcpState::kClosed;
        notify_activity_();
      }) {}

// --------------------------------------------------------------------------
// Application API
// --------------------------------------------------------------------------

void TcpSocket::bind(std::uint16_t port) { lport_ = port; }

void TcpSocket::listen() {
  assert(lport_ != 0 && "bind before listen");
  state_ = TcpState::kListen;
  stack_.register_listener_(this);
}

TcpSocket* TcpSocket::accept() {
  if (accept_q_.empty()) return nullptr;
  TcpSocket* child = accept_q_.front();
  accept_q_.pop_front();
  return child;
}

void TcpSocket::connect(net::IpAddr dst, std::uint16_t dport) {
  assert(state_ == TcpState::kClosed);
  if (lport_ == 0) lport_ = stack_.ephemeral_port_();
  raddr_ = dst;
  rport_ = dport;
  stack_.register_conn_(this);
  iss_ = stack_.random_iss_();
  snd_una_ = iss_;
  snd_nxt_ = iss_ + 1;
  cwnd_ = static_cast<std::uint32_t>(cfg_.init_cwnd_segments * cfg_.mss);
  state_ = TcpState::kSynSent;
  // Time the handshake for the first RTT sample (invalidated on SYN rtx).
  rtt_sampling_ = true;
  rtt_seq_ = snd_nxt_;
  rtt_start_ = stack_.host().sim().now();
  send_flags_(/*syn=*/true, /*fin_flag=*/false);
  arm_rtx_();
}

std::ptrdiff_t TcpSocket::send(std::span<const std::byte> data) {
  return send_gather(data, {});
}

std::ptrdiff_t TcpSocket::send_gather(std::span<const std::byte> a,
                                      std::span<const std::byte> b) {
  if (failed_) return kError;
  if (state_ != TcpState::kEstablished && state_ != TcpState::kCloseWait)
    return kAgain;
  if (fin_pending_ || fin_sent_) return kError;  // already closed for writing
  std::size_t n = snd_buf_.write(a);
  if (n == a.size()) n += snd_buf_.write(b);
  if (n == 0) return kAgain;
  stats_.bytes_sent += n;
  try_output_();
  return static_cast<std::ptrdiff_t>(n);
}

std::ptrdiff_t TcpSocket::send_gather(const net::BufferSlice& a,
                                      const net::BufferSlice& b) {
  if (failed_) return kError;
  if (state_ != TcpState::kEstablished && state_ != TcpState::kCloseWait)
    return kAgain;
  if (fin_pending_ || fin_sent_) return kError;  // already closed for writing
  std::size_t n = snd_buf_.write(a);
  if (n == a.len) n += snd_buf_.write(b);
  if (n == 0) return kAgain;
  stats_.bytes_sent += n;
  try_output_();
  return static_cast<std::ptrdiff_t>(n);
}

std::ptrdiff_t TcpSocket::recv(std::span<std::byte> out) {
  if (failed_) return kError;
  const std::size_t n = recv_q_.read(out);
  if (n > 0) {
    stats_.bytes_received += n;
    // Window update: tell the peer when meaningful space opens up.
    const auto wnd = static_cast<std::uint32_t>(recv_q_.free_space() -
                                                std::min(recv_q_.free_space(),
                                                         ooo_bytes_));
    if (wnd > last_advertised_wnd_ &&
        wnd - last_advertised_wnd_ >=
            std::min<std::uint32_t>(static_cast<std::uint32_t>(2 * cfg_.mss),
                                    static_cast<std::uint32_t>(cfg_.rcvbuf / 2))) {
      ack_now_();
    }
    return static_cast<std::ptrdiff_t>(n);
  }
  if (fin_received_ && ooo_.empty()) return 0;  // EOF
  return kAgain;
}

void TcpSocket::close() {
  switch (state_) {
    case TcpState::kClosed:
    case TcpState::kListen:
      state_ = TcpState::kClosed;
      return;
    case TcpState::kSynSent:
      state_ = TcpState::kClosed;
      return;
    case TcpState::kSynRcvd:
    case TcpState::kEstablished:
      state_ = TcpState::kFinWait1;
      break;
    case TcpState::kCloseWait:
      state_ = TcpState::kLastAck;
      break;
    default:
      return;  // close already in progress
  }
  fin_pending_ = true;
  maybe_send_fin_();
}

void TcpSocket::abort() {
  if (state_ != TcpState::kClosed && state_ != TcpState::kListen) send_rst_();
  fail_("aborted");
}

// --------------------------------------------------------------------------
// Output
// --------------------------------------------------------------------------

std::size_t TcpSocket::sent_unacked_data_() const {
  // Data bytes in [snd_una_, snd_nxt_), excluding the FIN's sequence slot.
  std::uint32_t d = snd_nxt_ - snd_una_;
  if (fin_sent_ && d > 0) d -= 1;
  return d;
}

void TcpSocket::try_output_() {
  if (state_ != TcpState::kEstablished && state_ != TcpState::kCloseWait &&
      state_ != TcpState::kFinWait1 && state_ != TcpState::kClosing &&
      state_ != TcpState::kLastAck)
    return;

  // RFC 2581 §4.1: restart from the initial window after a long idle period.
  if (cfg_.idle_cwnd_restart && flight_size_() == 0 && !fast_recovery_ &&
      last_send_time_ != 0 &&
      stack_.host().sim().now() - last_send_time_ >
          std::max(rto_, cfg_.min_rto)) {
    cwnd_ = std::min(
        cwnd_, static_cast<std::uint32_t>(cfg_.init_cwnd_segments * cfg_.mss));
  }

  while (true) {
    const std::uint32_t flight = flight_size_();
    const std::uint32_t usable = std::min(cwnd_, snd_wnd_);
    const std::size_t unsent = snd_buf_.size() - sent_unacked_data_();
    if (unsent == 0 || fin_sent_) break;
    if (flight >= usable) {
      // Zero usable window with nothing in flight: start persist probing so
      // the connection cannot deadlock on a lost window update.
      if (flight == 0 && snd_wnd_ == 0 && !persist_timer_.armed()) {
        persist_timer_.arm(std::min(rto_ << rtx_shift_, cfg_.max_rto));
      }
      break;
    }
    std::size_t len = std::min({unsent, cfg_.mss,
                                static_cast<std::size_t>(usable - flight)});
    if (len < cfg_.mss && cfg_.nagle && flight > 0)
      break;  // Nagle: hold small segment while data is outstanding
    send_data_segment_(snd_nxt_, len, /*rtx=*/false);
    snd_nxt_ += static_cast<std::uint32_t>(len);
    if (!rtx_timer_.armed()) arm_rtx_();
    if (!rtt_sampling_) {
      rtt_sampling_ = true;
      rtt_seq_ = snd_nxt_;
      rtt_start_ = stack_.host().sim().now();
    }
  }
  maybe_send_fin_();
}

void TcpSocket::send_data_segment_(std::uint32_t seq, std::size_t len,
                                   bool rtx) {
  Segment seg;
  seg.sport = lport_;
  seg.dport = rport_;
  seg.seq = seq;
  seg.ack = rcv_nxt_;
  seg.ack_flag = true;
  seg.wnd = static_cast<std::uint32_t>(recv_q_.free_space());
  last_advertised_wnd_ = seg.wnd;
  const std::size_t off = static_cast<std::size_t>(seq_diff(seq, snd_una_));
  seg.payload = snd_buf_.gather(off, len);  // zero-copy slice view
  seg.psh = (off + len == snd_buf_.size());
  if (!ooo_.empty() && peer_sack_ok_) seg.sacks = build_sack_blocks_();
  if (rtx) ++stats_.retransmits;
  ++stats_.segments_sent;
  segs_since_ack_ = 0;
  delack_timer_.cancel();
  last_send_time_ = stack_.host().sim().now();
  stack_.transmit_(std::move(seg), raddr_, laddr_, rtx);
}

void TcpSocket::send_flags_(bool syn, bool fin_flag) {
  Segment seg;
  seg.sport = lport_;
  seg.dport = rport_;
  seg.ack = rcv_nxt_;
  seg.wnd = static_cast<std::uint32_t>(recv_q_.free_space());
  last_advertised_wnd_ = seg.wnd;
  if (syn) {
    seg.syn = true;
    seg.seq = iss_;
    seg.mss_opt = static_cast<std::uint16_t>(cfg_.mss);
    seg.sack_permitted = cfg_.sack_enabled;
    // A SYN-ACK from SYN_RCVD acknowledges the peer's SYN.
    seg.ack_flag = (state_ == TcpState::kSynRcvd);
  } else if (fin_flag) {
    seg.fin = true;
    seg.seq = fin_seq_;
    seg.ack_flag = true;
  }
  ++stats_.segments_sent;
  last_send_time_ = stack_.host().sim().now();
  stack_.transmit_(std::move(seg), raddr_, laddr_);
}

void TcpSocket::maybe_send_fin_() {
  if (!fin_pending_ || fin_sent_) return;
  const std::size_t unsent = snd_buf_.size() - sent_unacked_data_();
  if (unsent > 0) return;  // flush data first
  fin_seq_ = snd_nxt_;
  snd_nxt_ += 1;
  fin_sent_ = true;
  send_flags_(/*syn=*/false, /*fin_flag=*/true);
  if (!rtx_timer_.armed()) arm_rtx_();
}

void TcpSocket::ack_now_() {
  delack_timer_.cancel();
  segs_since_ack_ = 0;
  Segment seg;
  seg.sport = lport_;
  seg.dport = rport_;
  seg.seq = snd_nxt_;
  seg.ack = rcv_nxt_;
  seg.ack_flag = true;
  seg.wnd = static_cast<std::uint32_t>(recv_q_.free_space());
  last_advertised_wnd_ = seg.wnd;
  if (!ooo_.empty() && peer_sack_ok_) seg.sacks = build_sack_blocks_();
  ++stats_.segments_sent;
  stack_.transmit_(std::move(seg), raddr_, laddr_);
}

void TcpSocket::schedule_ack_() {
  ++segs_since_ack_;
  if (!cfg_.delayed_ack || segs_since_ack_ >= 2) {
    ack_now_();
  } else if (!delack_timer_.armed()) {
    delack_timer_.arm(cfg_.delack_delay);
  }
}

void TcpSocket::send_rst_() {
  Segment seg;
  seg.sport = lport_;
  seg.dport = rport_;
  seg.seq = snd_nxt_;
  seg.rst = true;
  ++stats_.segments_sent;
  stack_.transmit_(std::move(seg), raddr_, laddr_);
}

std::vector<SackBlock> TcpSocket::build_sack_blocks_() const {
  // Report the most recently arrived out-of-order ranges, coalesced,
  // limited to the era-typical option space (3 blocks).
  std::vector<SackBlock> blocks;
  blocks.reserve(ooo_.size());
  for (const OooSegment& s : ooo_) {
    // Adjacent ranges are merged at insert time; segments that overlap a
    // neighbour (window-trimmed tails) still coalesce here.
    if (!blocks.empty() && blocks.back().right == s.seq) {
      blocks.back().right = s.end();
    } else {
      blocks.push_back({s.seq, s.end()});
    }
  }
  if (blocks.size() > cfg_.max_sack_blocks) {
    // Keep the highest blocks (most recent loss information).
    blocks.erase(blocks.begin(),
                 blocks.end() - static_cast<std::ptrdiff_t>(
                                    cfg_.max_sack_blocks));
  }
  return blocks;
}

// --------------------------------------------------------------------------
// Input
// --------------------------------------------------------------------------

void TcpSocket::on_segment(Segment&& seg, net::IpAddr src) {
  if (failed_ || state_ == TcpState::kClosed) return;
  ++stats_.segments_received;

  if (seg.rst) {
    if (state_ != TcpState::kListen) fail_("connection reset by peer");
    return;
  }

  switch (state_) {
    case TcpState::kListen: {
      if (!seg.syn || seg.ack_flag) return;
      TcpSocket* child = stack_.create_socket();
      child->lport_ = lport_;
      child->laddr_ = laddr_;  // DSR children keep answering as the VIP
      child->raddr_ = src;
      child->rport_ = seg.sport;
      child->parent_listener_ = this;
      if (seg.mss_opt != 0)
        child->cfg_.mss = std::min(child->cfg_.mss, std::size_t{seg.mss_opt});
      child->peer_sack_ok_ = cfg_.sack_enabled && seg.sack_permitted;
      child->rcv_nxt_ = seg.seq + 1;
      child->snd_wnd_ = seg.wnd;
      child->iss_ = stack_.random_iss_();
      child->snd_una_ = child->iss_;
      child->snd_nxt_ = child->iss_ + 1;
      child->cwnd_ = static_cast<std::uint32_t>(child->cfg_.init_cwnd_segments *
                                                child->cfg_.mss);
      child->state_ = TcpState::kSynRcvd;
      stack_.register_conn_(child);
      // Time the SYN-ACK -> ACK exchange for the first RTT sample.
      child->rtt_sampling_ = true;
      child->rtt_seq_ = child->snd_nxt_;
      child->rtt_start_ = stack_.host().sim().now();
      child->send_flags_(/*syn=*/true, /*fin_flag=*/false);
      child->arm_rtx_();
      return;
    }

    case TcpState::kSynSent: {
      if (seg.syn && seg.ack_flag && seg.ack == iss_ + 1) {
        if (rtt_sampling_) {
          rtt_sampling_ = false;
          update_rtt_(stack_.host().sim().now() - rtt_start_);
        }
        rcv_nxt_ = seg.seq + 1;
        snd_una_ = seg.ack;
        snd_wnd_ = seg.wnd;
        if (seg.mss_opt != 0)
          cfg_.mss = std::min(cfg_.mss, std::size_t{seg.mss_opt});
        peer_sack_ok_ = cfg_.sack_enabled && seg.sack_permitted;
        rtx_timer_.cancel();
        rtx_shift_ = 0;
        retries_ = 0;
        enter_established_();
        ack_now_();
      }
      return;
    }

    case TcpState::kSynRcvd: {
      if (seg.syn && !seg.ack_flag) {
        send_flags_(/*syn=*/true, /*fin_flag=*/false);  // SYN-ACK was lost
        return;
      }
      if (seg.ack_flag && seg.ack == iss_ + 1) {
        if (rtt_sampling_) {
          rtt_sampling_ = false;
          update_rtt_(stack_.host().sim().now() - rtt_start_);
        }
        snd_una_ = seg.ack;
        snd_wnd_ = seg.wnd;
        rtx_timer_.cancel();
        rtx_shift_ = 0;
        retries_ = 0;
        enter_established_();
        if (parent_listener_ != nullptr) {
          parent_listener_->accept_q_.push_back(this);
          parent_listener_->notify_activity_();
        }
        // Fall through to normal processing for piggybacked data.
        if (!seg.payload.empty()) process_payload_(seg);
        if (seg.fin) process_fin_(seg);
      }
      return;
    }

    default:
      break;
  }

  // Established-and-beyond processing.
  if (seg.syn) return;  // stale duplicate SYN
  if (seg.ack_flag) process_ack_(seg);
  if (failed_ || state_ == TcpState::kClosed) return;
  if (!seg.payload.empty()) process_payload_(seg);
  if (seg.fin) process_fin_(seg);
  try_output_();
  notify_activity_();
}

void TcpSocket::enter_established_() {
  state_ = TcpState::kEstablished;
  notify_activity_();
}

void TcpSocket::process_ack_(const Segment& seg) {
  // Ignore ACKs for data we have not sent.
  if (seq_gt(seg.ack, snd_nxt_)) return;

  if (peer_sack_ok_ && !seg.sacks.empty()) merge_peer_sacks_(seg.sacks);

  if (seq_gt(seg.ack, snd_una_)) {
    const auto acked = static_cast<std::uint32_t>(seq_diff(seg.ack, snd_una_));
    const bool was_in_recovery = fast_recovery_;

    // FIN occupies one sequence number beyond the data.
    const std::size_t data_acked =
        std::min(static_cast<std::size_t>(acked), snd_buf_.size());
    snd_buf_.drop(data_acked);
    snd_una_ = seg.ack;
    snd_wnd_ = seg.wnd;
    retries_ = 0;

    // RTT sample (Karn: only if the timed sequence was not retransmitted;
    // the sample is invalidated on any timeout).
    if (rtt_sampling_ && seq_geq(seg.ack, rtt_seq_)) {
      rtt_sampling_ = false;
      update_rtt_(stack_.host().sim().now() - rtt_start_);
    }
    rtx_shift_ = 0;

    // Drop now-cumulatively-acked scoreboard ranges.
    scoreboard_.erase_below(snd_una_);

    on_new_ack_(acked, was_in_recovery);

    if (fin_sent_ && seq_gt(seg.ack, fin_seq_)) {
      // Our FIN is acknowledged.
      rtx_timer_.cancel();
      if (state_ == TcpState::kFinWait1) state_ = TcpState::kFinWait2;
      else if (state_ == TcpState::kClosing) enter_time_wait_();
      else if (state_ == TcpState::kLastAck) {
        state_ = TcpState::kClosed;
        notify_activity_();
        return;
      }
    }

    if (flight_size_() == 0 && !(fin_sent_ && seq_leq(snd_una_, fin_seq_))) {
      rtx_timer_.cancel();
    } else {
      arm_rtx_();
    }
    persist_timer_.cancel();
  } else if (seg.ack == snd_una_) {
    // Potential duplicate or pure window update.
    const bool is_dupack = flight_size_() > 0 && seg.payload.empty() &&
                           !seg.fin && seg.wnd == snd_wnd_;
    if (is_dupack) {
      on_dupack_(seg);
    } else {
      snd_wnd_ = seg.wnd;
      if (snd_wnd_ > 0) persist_timer_.cancel();
    }
  }
}

void TcpSocket::on_new_ack_(std::uint32_t acked_bytes, bool was_in_recovery) {
  const auto mss32 = static_cast<std::uint32_t>(cfg_.mss);
  if (was_in_recovery) {
    if (seq_geq(snd_una_, recover_)) {
      // Full acknowledgment: leave fast recovery (NewReno).
      fast_recovery_ = false;
      dupacks_ = 0;
      cwnd_ = ssthresh_;
    } else {
      // Partial ACK: retransmit the next hole, deflate the window.
      if (auto hole = next_rtx_hole_()) retransmit_one_(*hole);
      cwnd_ = (cwnd_ > acked_bytes ? cwnd_ - acked_bytes : 0);
      cwnd_ = std::max(cwnd_ + mss32, 2 * mss32);
      arm_rtx_();
    }
    return;
  }
  dupacks_ = 0;
  // Reno growth is ACK-counted (the paper contrasts this with SCTP's
  // byte-counted growth): slow start adds one MSS per ACK, congestion
  // avoidance adds MSS*MSS/cwnd per ACK.
  if (cwnd_ < ssthresh_) {
    cwnd_ += mss32;
  } else {
    cwnd_ += std::max<std::uint32_t>(1, mss32 * mss32 / std::max(cwnd_, 1u));
  }
  const auto cap = static_cast<std::uint32_t>(cfg_.sndbuf);
  cwnd_ = std::min(cwnd_, cap);
}

void TcpSocket::on_dupack_(const Segment& seg) {
  ++stats_.dupacks_received;
  ++dupacks_;
  const auto mss32 = static_cast<std::uint32_t>(cfg_.mss);
  if (!fast_recovery_ && dupacks_ == cfg_.dupack_threshold) {
    ssthresh_ = std::max(flight_size_() / 2, 2 * mss32);
    recover_ = snd_nxt_;
    fast_recovery_ = true;
    ++stats_.fast_retransmits;
    retransmit_one_(snd_una_);
    cwnd_ = ssthresh_ + cfg_.dupack_threshold * mss32;
    arm_rtx_();
  } else if (fast_recovery_) {
    cwnd_ += mss32;  // window inflation per additional dupack
    // With SACK information, retransmit the next known hole rather than
    // waiting for a partial ACK.
    if (peer_sack_ok_ && !seg.sacks.empty()) {
      if (auto hole = next_rtx_hole_(); hole && seq_gt(*hole, snd_una_)) {
        retransmit_one_(*hole);
      }
    }
    try_output_();
  }
}

void TcpSocket::merge_peer_sacks_(const std::vector<SackBlock>& blocks) {
  for (const auto& b : blocks) {
    if (seq_leq(b.right, snd_una_)) continue;
    scoreboard_.insert(b.left, b.right);
  }
}

bool TcpSocket::range_sacked_(std::uint32_t seq, std::size_t len) const {
  return scoreboard_.contains_range(seq,
                                    seq + static_cast<std::uint32_t>(len));
}

std::optional<std::uint32_t> TcpSocket::next_rtx_hole_() const {
  if (scoreboard_.empty()) return snd_una_;
  return scoreboard_.next_hole(snd_una_);
}

void TcpSocket::retransmit_one_(std::uint32_t seq) {
  if (fin_sent_ && seq == fin_seq_) {
    send_flags_(/*syn=*/false, /*fin_flag=*/true);
    ++stats_.retransmits;
    return;
  }
  const std::size_t off = static_cast<std::size_t>(seq_diff(seq, snd_una_));
  if (off >= snd_buf_.size()) return;
  // A retransmission may only cover previously sent sequence space: with
  // e.g. only persist-probe bytes outstanding, sending a full MSS would
  // make the peer acknowledge "unsent" data, which we would then discard —
  // wedging the connection.
  const auto sent_beyond =
      static_cast<std::size_t>(seq_diff(snd_nxt_, seq)) -
      ((fin_sent_ && seq_leq(seq, fin_seq_)) ? 1u : 0u);
  std::size_t len = std::min({cfg_.mss, snd_buf_.size() - off, sent_beyond});
  if (len == 0) return;
  // Do not re-send bytes the peer already holds.
  if (range_sacked_(seq, len)) return;
  send_data_segment_(seq, len, /*rtx=*/true);
  rtt_sampling_ = false;  // Karn: never time a retransmitted segment
}

void TcpSocket::insert_ooo_(std::uint32_t seq, net::SliceChain&& data) {
  if (data.empty()) return;
  std::uint32_t end = seq + static_cast<std::uint32_t>(data.size());
  auto it = std::lower_bound(
      ooo_.begin(), ooo_.end(), seq,
      [](const OooSegment& s, std::uint32_t v) { return seq_lt(s.seq, v); });
  if (it != ooo_.begin()) {
    const OooSegment& prev = *(it - 1);
    if (seq_leq(end, prev.end())) return;  // fully buffered already
    if (seq_lt(seq, prev.end())) {
      // Keep only the new tail beyond the predecessor.
      data.trim_front(static_cast<std::size_t>(seq_diff(prev.end(), seq)));
      seq = prev.end();
    }
  }
  if (it != ooo_.end() && seq_lt(it->seq, end)) {
    // Drop what the successor already buffers (a retransmission re-sends a
    // previously sent range, so its tail never extends past the successor).
    data = data.subchain(0, static_cast<std::size_t>(seq_diff(it->seq, seq)));
    end = it->seq;
  }
  if (data.empty()) return;
  const std::size_t added = data.size();
  if (it != ooo_.begin() && (it - 1)->end() == seq) {
    OooSegment& prev = *(it - 1);
    prev.data.append(std::move(data));
    ooo_bytes_ += added;
    if (it != ooo_.end() && it->seq == end) {
      // This insert closed the gap: fold the successor in too.
      prev.data.append(std::move(it->data));
      ooo_.erase(it);
    }
    return;
  }
  if (it != ooo_.end() && it->seq == end) {
    // Front-extend the successor by splicing its chain behind the new data
    // — descriptor appends only. (The old byte-vector representation did
    // data.insert(begin, ...) here, memmoving the successor's whole body on
    // every front-extension: O(n^2) while filling a long gap backwards.)
    data.append(std::move(it->data));
    it->data = std::move(data);
    it->seq = seq;
    ooo_bytes_ += added;
    return;
  }
  ooo_.insert(it, OooSegment{seq, std::move(data)});
  ooo_bytes_ += added;
}

void TcpSocket::process_payload_(Segment& seg) {
  std::uint32_t seq = seg.seq;
  // Chain copy (refcount bumps), not a move: process_fin_ still reads
  // seg.payload.size() after this returns.
  net::SliceChain data = seg.payload;

  // Trim anything already delivered.
  if (seq_lt(seq, rcv_nxt_)) {
    const auto dup = static_cast<std::size_t>(seq_diff(rcv_nxt_, seq));
    if (dup >= data.size()) {
      ack_now_();  // pure duplicate: re-ack
      return;
    }
    data.trim_front(dup);
    seq = rcv_nxt_;
  }

  const std::size_t space = recv_q_.free_space();
  if (seq == rcv_nxt_) {
    const std::size_t take = std::min(data.size(), space);
    if (take > 0) {
      recv_q_.write(take == data.size() ? std::move(data)
                                        : data.subchain(0, take));
      rcv_nxt_ += static_cast<std::uint32_t>(take);
      // Pull any now-contiguous out-of-order data across.
      while (!ooo_.empty()) {
        OooSegment& front = ooo_.front();
        if (seq_gt(front.seq, rcv_nxt_)) break;
        std::size_t drop = 0;
        if (seq_lt(front.seq, rcv_nxt_)) {
          drop = static_cast<std::size_t>(seq_diff(rcv_nxt_, front.seq));
          if (drop >= front.data.size()) {
            ooo_bytes_ -= front.data.size();
            ooo_.erase(ooo_.begin());
            continue;
          }
        }
        const std::size_t want = front.data.size() - drop;
        if (want > recv_q_.free_space()) break;  // no room; leave for later
        if (drop > 0) front.data.trim_front(drop);
        ooo_bytes_ -= front.data.size() + drop;
        recv_q_.write(std::move(front.data));
        rcv_nxt_ += static_cast<std::uint32_t>(want);
        ooo_.erase(ooo_.begin());
      }
    }
    if (!ooo_.empty()) {
      ack_now_();  // still holes: keep SACK info flowing
    } else {
      schedule_ack_();
    }
    notify_activity_();
  } else if (seq_gt(seq, rcv_nxt_)) {
    // Out of order: buffer within our window and send an immediate
    // duplicate ACK carrying SACK blocks.
    const std::size_t wnd = recv_q_.free_space();
    const auto offset = static_cast<std::size_t>(seq_diff(seq, rcv_nxt_));
    if (offset < wnd) {
      const std::size_t take = std::min(data.size(), wnd - offset);
      if (take > 0)
        insert_ooo_(seq, take == data.size() ? std::move(data)
                                             : data.subchain(0, take));
    }
    ack_now_();
  }
}

void TcpSocket::process_fin_(const Segment& seg) {
  const std::uint32_t fin_seq = seg.seq + static_cast<std::uint32_t>(
                                              seg.payload.size());
  if (fin_seq != rcv_nxt_) {
    ack_now_();  // FIN beyond a hole: dup-ack it
    return;
  }
  if (fin_received_) {
    ack_now_();
    return;
  }
  fin_received_ = true;
  rcv_nxt_ += 1;
  ack_now_();
  switch (state_) {
    case TcpState::kEstablished:
      state_ = TcpState::kCloseWait;
      break;
    case TcpState::kFinWait1:
      state_ = TcpState::kClosing;
      break;
    case TcpState::kFinWait2:
      enter_time_wait_();
      break;
    default:
      break;
  }
  notify_activity_();
}

void TcpSocket::fail_(const char* reason) {
  if (getenv("TCPTRACE") != nullptr) {
    std::printf("[%f] tcp fail lport=%u rport=%u: %s (retries=%u rtx=%llu "
                "to=%llu una_out=%u wnd=%u)\n",
                static_cast<double>(stack_.host().sim().now()) / 1e9, lport_,
                rport_, reason, retries_,
                static_cast<unsigned long long>(stats_.retransmits),
                static_cast<unsigned long long>(stats_.timeouts),
                snd_nxt_ - snd_una_, snd_wnd_);
  }
  failed_ = true;
  failure_reason_ = reason;
  state_ = TcpState::kClosed;
  rtx_timer_.cancel();
  persist_timer_.cancel();
  delack_timer_.cancel();
  notify_activity_();
  if (on_error_) on_error_(reason);
}

void TcpSocket::deactivate() {
  if (failed_ || state_ == TcpState::kClosed) return;
  // Quiet local teardown: no RST, no error callback — the owner asked for
  // this, it is not a failure being discovered.
  failed_ = true;
  failure_reason_ = "deactivated";
  state_ = TcpState::kClosed;
  rtx_timer_.cancel();
  persist_timer_.cancel();
  delack_timer_.cancel();
}

// --------------------------------------------------------------------------
// Timers
// --------------------------------------------------------------------------

void TcpSocket::arm_rtx_() {
  rtx_timer_.arm(std::min(rto_ << rtx_shift_, cfg_.max_rto));
}

void TcpSocket::on_rtx_timeout_() {
  if (getenv("TCPTRACE") != nullptr) {
    std::printf("[%f] tcp RTO lport=%u rport=%u retries=%u state=%s "
                "flight=%u wnd=%u cwnd=%u shift=%u\n",
                static_cast<double>(stack_.host().sim().now()) / 1e9, lport_,
                rport_, retries_, to_string(state_), snd_nxt_ - snd_una_,
                snd_wnd_, cwnd_, rtx_shift_);
  }
  ++stats_.timeouts;
  ++retries_;
  const unsigned limit = (state_ == TcpState::kSynSent ||
                          state_ == TcpState::kSynRcvd)
                             ? cfg_.max_syn_retries
                             : cfg_.max_data_retries;
  if (retries_ > limit) {
    fail_("too many retransmissions");
    return;
  }
  if (rtx_shift_ < 12) ++rtx_shift_;
  rtt_sampling_ = false;

  switch (state_) {
    case TcpState::kSynSent:
      send_flags_(/*syn=*/true, /*fin_flag=*/false);
      break;
    case TcpState::kSynRcvd:
      send_flags_(/*syn=*/true, /*fin_flag=*/false);
      break;
    default: {
      // Loss detected by timeout: collapse to one segment and slow-start.
      const auto mss32 = static_cast<std::uint32_t>(cfg_.mss);
      ssthresh_ = std::max(flight_size_() / 2, 2 * mss32);
      cwnd_ = mss32;
      fast_recovery_ = false;
      dupacks_ = 0;
      scoreboard_.clear();  // era-conservative: distrust SACK state
      if (sent_unacked_data_() > 0) {
        retransmit_one_(snd_una_);
      } else if (fin_sent_ && seq_leq(snd_una_, fin_seq_)) {
        send_flags_(/*syn=*/false, /*fin_flag=*/true);
        ++stats_.retransmits;
      }
      break;
    }
  }
  arm_rtx_();
}

void TcpSocket::on_persist_timeout_() {
  // Zero-window probe: one byte past the window.
  const std::size_t unsent = snd_buf_.size() - sent_unacked_data_();
  if (snd_wnd_ == 0 && unsent > 0 && !fin_sent_) {
    send_data_segment_(snd_nxt_, 1, /*rtx=*/false);
    snd_nxt_ += 1;
    if (!rtx_timer_.armed()) arm_rtx_();
    persist_timer_.arm(std::min(rto_ << rtx_shift_, cfg_.max_rto));
  }
}

void TcpSocket::update_rtt_(sim::SimTime measured) {
  if (srtt_ == 0) {
    srtt_ = measured;
    rttvar_ = measured / 2;
  } else {
    const sim::SimTime err =
        measured > srtt_ ? measured - srtt_ : srtt_ - measured;
    rttvar_ = (3 * rttvar_ + err) / 4;
    srtt_ = (7 * srtt_ + measured) / 8;
  }
  rto_ = std::clamp(srtt_ + std::max<sim::SimTime>(4 * rttvar_, 1),
                    cfg_.min_rto, cfg_.max_rto);
}

void TcpSocket::enter_time_wait_() {
  state_ = TcpState::kTimeWait;
  time_wait_timer_.arm(cfg_.time_wait);
  notify_activity_();
}

// --------------------------------------------------------------------------
// Stack
// --------------------------------------------------------------------------

TcpStack::TcpStack(net::Host& host, TcpConfig cfg, sim::Rng rng)
    : host_(host), cfg_(cfg), rng_(rng) {
  host_.register_protocol(net::IpProto::kTcp, this);
}

TcpSocket* TcpStack::create_socket() {
  sockets_.push_back(std::make_unique<TcpSocket>(*this, cfg_));
  return sockets_.back().get();
}

void TcpStack::on_ip_packet(net::Packet&& pkt) {
  // Modeled Internet checksum: a segment damaged on the wire never reaches
  // the connection (the header checksum itself is not serialized, so the
  // fault pipeline marks corrupted packets instead).
  if (pkt.flags & net::kPktFlagCorrupted) return;
  // Stack receive CPU (serialized on the host CPU), then processing. The
  // segment is decoded inside the deferred callback: capturing the
  // refcounted payload Buffer instead of a decoded Segment keeps the
  // closure within the scheduler's inline buffer (no per-packet
  // allocation) and skips decode work for packets the simulation never
  // gets to. Well-formedness of non-corrupted packets is an invariant
  // (we built them), so deferring the malformed-drop check is unobservable.
  const net::IpAddr src = pkt.src;
  host_.sim().schedule_after(
      host_.occupy_cpu(cfg_.cpu_per_packet),
      [this, payload = std::move(pkt.payload), src]() mutable {
        Segment seg;
        try {
          seg = Segment::decode(payload);
        } catch (const net::DecodeError&) {
          return;  // malformed: drop
        }
        if (TcpSocket* s = conns_.find(conn_key_(seg.dport, src.v, seg.sport));
            s != nullptr) {
          s->on_segment(std::move(seg), src);
          return;
        }
        if (TcpSocket* s = listeners_.find(seg.dport); s != nullptr) {
          s->on_segment(std::move(seg), src);
        }
        // else: no matching socket; silently drop (no RST model needed)
      });
}

void TcpStack::transmit_(Segment&& seg, net::IpAddr dst, net::IpAddr src,
                         bool rtx) {
  net::Packet pkt;
  pkt.src = src;
  pkt.dst = dst;
  pkt.proto = net::IpProto::kTcp;
  net::Buffer::Builder wire;
  seg.encode_into(wire);  // header once + counted payload scatter-gather
  pkt.payload = std::move(wire).finish();
  if (rtx) pkt.flags |= net::kPktFlagRetransmit;
  host_.send_ip(std::move(pkt), cfg_.cpu_per_packet);
}

void TcpStack::register_conn_(TcpSocket* s) {
  conns_.put(conn_key_(s->lport_, s->raddr_.v, s->rport_), s);
}

void TcpStack::register_listener_(TcpSocket* s) { listeners_.put(s->lport_, s); }

std::uint16_t TcpStack::ephemeral_port_() {
  while (true) {
    const std::uint16_t p = next_ephemeral_++;
    if (next_ephemeral_ == 0) next_ephemeral_ = 49152;
    bool in_use = listeners_.contains(p);
    if (!in_use) {
      // Cold path (once per connect); the any-of scan is order-insensitive.
      conns_.for_each([&](std::uint64_t key, TcpSocket*) {
        if (static_cast<std::uint16_t>(key >> 48) == p) in_use = true;
      });
    }
    if (!in_use) return p;
  }
}

}  // namespace sctpmpi::tcp
