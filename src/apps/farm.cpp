#include "apps/farm.hpp"

#include <atomic>
#include <cassert>
#include <vector>

namespace sctpmpi::apps {

namespace {
// Tag 0 carries worker->manager requests and manager->worker termination
// replies; task tags are 1..max_work_tags.
constexpr int kCtlTag = 0;
}  // namespace

// Protocol invariant: a worker keeps exactly `outstanding_requests`
// unanswered requests at the manager until the task pool dries up. The
// manager answers a request either with a full batch of `fanout` tasks, or
// (once the pool is dry) with any remaining tasks plus ONE termination
// message. A worker issues a new request for every `fanout` task replies
// received (one-for-one replacement of a completed batch) and never after
// seeing a termination; therefore each worker receives exactly
// `outstanding_requests` terminations, which is its exit condition — exact
// regardless of how replies from concurrent batches interleave (they do,
// especially over multistreamed SCTP).
FarmResult run_farm(core::WorldConfig cfg, FarmParams params,
                    const std::function<void(core::World&)>& pre_run) {
  assert(cfg.ranks >= 2);
  // Body factory: the same protocol body writes into caller-chosen
  // accumulators, so the placement warmup below can run it against
  // scratch state without polluting the measured run's results.
  const auto body_for = [&params](FarmResult* result,
                                  std::atomic<int>* tasks_done_total) {
    return [&params, result, tasks_done_total](core::Mpi& mpi) {
    const int nworkers = mpi.size() - 1;

    if (mpi.rank() == 0) {
      // ---- Manager ------------------------------------------------------
      int tasks_left = params.num_tasks;
      int next_tag = 1;
      std::uint64_t served = 0;
      std::vector<int> terms_sent(static_cast<std::size_t>(mpi.size()), 0);
      int workers_finished = 0;

      std::vector<std::byte> task(params.task_size, std::byte{0x7});
      std::byte req_buf[8];
      std::vector<std::uint32_t> tasks_to(static_cast<std::size_t>(mpi.size()),
                                          0);

      while (workers_finished < nworkers) {
        core::MpiStatus st =
            mpi.recv(std::span(req_buf, 8), core::kAnySource, kCtlTag);
        ++served;
        const int worker = st.source;
        const int batch =
            tasks_left >= params.fanout ? params.fanout : tasks_left;
        for (int f = 0; f < batch; ++f) {
          --tasks_left;
          mpi.send(task, worker, next_tag);
          next_tag = next_tag % params.max_work_tags + 1;
        }
        tasks_to[static_cast<std::size_t>(worker)] +=
            static_cast<std::uint32_t>(batch);
        if (batch < params.fanout) {
          // Pool is dry (or went dry mid-batch): terminate this request.
          // The termination carries the total task count sent to this
          // worker, so the worker can drain in-flight tasks exactly even
          // when a termination overtakes them on another stream.
          std::byte term[4];
          const std::uint32_t count =
              tasks_to[static_cast<std::size_t>(worker)];
          term[0] = static_cast<std::byte>(count >> 24);
          term[1] = static_cast<std::byte>(count >> 16);
          term[2] = static_cast<std::byte>(count >> 8);
          term[3] = static_cast<std::byte>(count);
          mpi.send(std::span(term, 4), worker, kCtlTag);
          if (++terms_sent[static_cast<std::size_t>(worker)] ==
              params.outstanding_requests) {
            ++workers_finished;
          }
        }
      }
      result->manager_requests_served = served;
    } else {
      // ---- Worker ---------------------------------------------------------
      // Upper bound of in-flight replies: every unanswered request can
      // yield fanout tasks + 1 termination.
      const int posted_slots =
          params.outstanding_requests * (params.fanout + 1);
      std::vector<std::vector<std::byte>> bufs(
          static_cast<std::size_t>(posted_slots),
          std::vector<std::byte>(params.task_size));
      std::vector<core::Request> recvs(
          static_cast<std::size_t>(posted_slots));
      // Pre-post receives with MPI_ANY_TAG (paper §4.2.1): all replies are
      // expected messages.
      for (int i = 0; i < posted_slots; ++i) {
        recvs[static_cast<std::size_t>(i)] =
            mpi.irecv(bufs[static_cast<std::size_t>(i)], 0, core::kAnyTag);
      }
      std::byte req{1};
      for (int i = 0; i < params.outstanding_requests; ++i) {
        mpi.send(std::span(&req, 1), 0, kCtlTag);
      }

      int terms_seen = 0;
      int tasks_since_request = 0;
      int my_tasks = 0;
      std::uint32_t my_target = 0;  // final task count, from terminations

      auto handle_term = [&](const std::vector<std::byte>& buf) {
        ++terms_seen;
        const std::uint32_t count =
            (static_cast<std::uint32_t>(buf[0]) << 24) |
            (static_cast<std::uint32_t>(buf[1]) << 16) |
            (static_cast<std::uint32_t>(buf[2]) << 8) |
            static_cast<std::uint32_t>(buf[3]);
        if (count > my_target) my_target = count;
      };

      // Main loop: process replies until all terminations arrived AND all
      // announced tasks were received (a termination on the control stream
      // can overtake tasks on other streams).
      while (terms_seen < params.outstanding_requests ||
             my_tasks < static_cast<int>(my_target)) {
        core::MpiStatus st;
        const int idx = mpi.waitany(recvs, &st);
        const bool is_term = st.tag == kCtlTag;
        if (is_term) handle_term(bufs[static_cast<std::size_t>(idx)]);
        // Re-post the slot only after consuming its contents.
        recvs[static_cast<std::size_t>(idx)] = mpi.irecv(
            bufs[static_cast<std::size_t>(idx)], 0, core::kAnyTag);
        if (is_term) continue;
        // Process the task, overlapping with the batches still in flight.
        mpi.compute(params.work_per_task);
        ++my_tasks;
        if (++tasks_since_request == params.fanout) {
          tasks_since_request = 0;
          mpi.send(std::span(&req, 1), 0, kCtlTag);
        }
      }
      tasks_done_total->fetch_add(my_tasks, std::memory_order_relaxed);
    }
    };
  };

  if (cfg.adaptive_placement && cfg.shards > 1 && cfg.placement.empty()) {
    // Measured placement: profile a truncated single-shard warmup of this
    // very body, then balance-and-min-cut the host->shard map before the
    // sharded world is built. Scratch accumulators keep the warmup's
    // half-finished counts out of the real result.
    FarmResult scratch;
    std::atomic<int> scratch_done{0};
    cfg.placement = core::measured_placement(
        cfg, body_for(&scratch, &scratch_done));
  }

  core::World world(cfg);
  if (pre_run) pre_run(world);
  FarmResult result;
  // Atomic: on sharded worlds the worker bodies run on different threads.
  std::atomic<int> tasks_done_total{0};
  world.run(body_for(&result, &tasks_done_total));

  result.total_runtime_seconds = world.elapsed_seconds();
  result.tasks_completed = tasks_done_total.load(std::memory_order_relaxed);
  return result;
}

}  // namespace sctpmpi::apps
