#include "apps/manyflow.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <vector>

namespace sctpmpi::apps {

namespace {
constexpr int kDataTag = 1;
}  // namespace

ManyflowResult run_manyflow(core::WorldConfig cfg, ManyflowParams params,
                            const std::function<void(core::World&)>& pre_run) {
  assert(cfg.ranks >= 2);
  assert(params.msg_size <= cfg.rpi.eager_limit);
  // Body factory: see run_farm — lets the placement warmup run the same
  // protocol against a scratch accumulator.
  const auto body_for = [&params](std::atomic<std::uint64_t>* received_total) {
    return [&params, received_total](core::Mpi& mpi) {
    const int n = mpi.size();
    const int fan = std::min(params.fanout, n - 1);
    // Neighbour symmetry: rank r sends to r+1..r+fan, so exactly `fan`
    // ranks send to r — the receive count is known in advance.
    const int expect = fan * params.msgs_per_peer;
    const int window = std::min(params.recv_window, expect);

    std::vector<std::vector<std::byte>> rbufs(
        static_cast<std::size_t>(window),
        std::vector<std::byte>(params.msg_size));
    std::vector<core::Request> recvs(static_cast<std::size_t>(window));
    for (int i = 0; i < window; ++i) {
      recvs[static_cast<std::size_t>(i)] = mpi.irecv(
          rbufs[static_cast<std::size_t>(i)], core::kAnySource, kDataTag);
    }

    std::vector<std::byte> payload(
        params.msg_size, static_cast<std::byte>(mpi.rank() & 0xFF));
    std::vector<core::Request> sends(static_cast<std::size_t>(fan));
    int received = 0;

    for (int j = 0; j < params.msgs_per_peer; ++j) {
      for (int p = 0; p < fan; ++p) {
        const int dst = (mpi.rank() + 1 + p) % n;
        sends[static_cast<std::size_t>(p)] =
            mpi.isend(payload, dst, kDataTag);
      }
      // Reap whatever already landed, without blocking the injection loop.
      for (int i = 0; i < window; ++i) {
        auto& slot = recvs[static_cast<std::size_t>(i)];
        if (slot.valid() && mpi.test(slot)) {
          ++received;
          if (expect - received >= window) {
            slot = mpi.irecv(rbufs[static_cast<std::size_t>(i)],
                             core::kAnySource, kDataTag);
          }
        }
      }
      mpi.waitall(sends);
      if (params.think_time > 0) mpi.compute(params.think_time);
    }

    // Injection done; drain the rest of the expected messages.
    while (received < expect) {
      const int idx = mpi.waitany(recvs);
      ++received;
      if (expect - received >= window) {
        recvs[static_cast<std::size_t>(idx)] = mpi.irecv(
            rbufs[static_cast<std::size_t>(idx)], core::kAnySource, kDataTag);
      }
    }
    received_total->fetch_add(static_cast<std::uint64_t>(received),
                              std::memory_order_relaxed);
    };
  };

  if (cfg.adaptive_placement && cfg.shards > 1 && cfg.placement.empty()) {
    std::atomic<std::uint64_t> scratch{0};
    cfg.placement = core::measured_placement(cfg, body_for(&scratch));
  }

  core::World world(cfg);
  if (pre_run) pre_run(world);
  ManyflowResult result;
  std::atomic<std::uint64_t> received_total{0};
  world.run(body_for(&received_total));

  result.total_runtime_seconds = world.elapsed_seconds();
  result.messages_received =
      received_total.load(std::memory_order_relaxed);
  const double bytes = static_cast<double>(result.messages_received) *
                       static_cast<double>(params.msg_size);
  if (result.total_runtime_seconds > 0) {
    result.aggregate_goodput_mb_s =
        bytes / (1024.0 * 1024.0) / result.total_runtime_seconds;
  }
  return result;
}

}  // namespace sctpmpi::apps
