// MPBench-style ping-pong (paper §4.1.1): two processes repeatedly
// exchange messages of a given size, all with the same tag; reports
// throughput. Used for Fig. 8 (size sweep, no loss) and Table 1 (30 KiB /
// 300 KiB under 1-2% loss).
#pragma once

#include <cstddef>

#include "core/world.hpp"

namespace sctpmpi::apps {

struct PingPongParams {
  std::size_t message_size = 1024;
  int iterations = 100;
  int warmup = 5;
};

struct PingPongResult {
  /// One-way payload throughput: iterations * size / loop-time.
  double throughput_Bps = 0;
  /// Average round-trip time per iteration (seconds).
  double rtt_avg = 0;
  double loop_seconds = 0;
};

/// Runs the ping-pong between ranks 0 and 1 of a fresh World built from
/// `cfg` (cfg.ranks is forced to 2).
PingPongResult run_pingpong(core::WorldConfig cfg, PingPongParams params);

}  // namespace sctpmpi::apps
