#include "apps/nas.hpp"

#include <array>
#include <cassert>
#include <vector>

namespace sctpmpi::apps {

const char* to_string(NasKernel k) {
  switch (k) {
    case NasKernel::kLU: return "LU";
    case NasKernel::kIS: return "IS";
    case NasKernel::kMG: return "MG";
    case NasKernel::kEP: return "EP";
    case NasKernel::kCG: return "CG";
    case NasKernel::kBT: return "BT";
    case NasKernel::kSP: return "SP";
  }
  return "?";
}

const char* to_string(NasClass c) {
  switch (c) {
    case NasClass::kS: return "S";
    case NasClass::kW: return "W";
    case NasClass::kA: return "A";
    case NasClass::kB: return "B";
  }
  return "?";
}

std::vector<NasKernel> nas_paper_order() {
  return {NasKernel::kLU, NasKernel::kSP, NasKernel::kEP, NasKernel::kCG,
          NasKernel::kBT, NasKernel::kMG, NasKernel::kIS};
}

namespace {

/// Per-kernel, per-class skeleton parameters. Message sizes follow the
/// paper's §4.1.2 analysis: classes S/W send predominantly short
/// (<= 64 KiB) messages; A/B shift toward long messages — except MG and
/// BT, which keep a greater proportion of short messages even at class B
/// (the reason the paper gives for TCP's edge on those two). Iteration
/// counts are scaled down from NPB (the nominal op counts are scaled
/// identically, so Mop/s is unaffected).
struct ClassTable {
  std::array<std::size_t, 4> msg;        // base message bytes per class
  std::array<int, 4> iters;
  std::array<double, 4> gops;            // nominal operations (G)
  std::array<double, 4> compute_ms;      // per-rank compute per iteration
};

constexpr int idx(NasClass c) { return static_cast<int>(c); }

// Calibration targets (class B, 8 procs, no loss): Mop/s in the ballpark
// of the paper's Fig. 9 bars — LU ~4200, SP ~2500, EP ~330, CG ~1350,
// BT ~3100, MG ~2700, IS ~120.
const ClassTable kLuTable{
    {400, 1'000, 5'000, 10'000},
    {5, 8, 12, 16},
    {0.032, 0.16, 0.8, 3.2},
    {0.8, 3.0, 15.0, 40.0}};
const ClassTable kSpTable{
    {1'500, 6'000, 48'000, 96'000},
    {5, 8, 15, 20},
    {0.018, 0.09, 0.45, 1.8},
    {0.3, 1.5, 9.0, 24.0}};
const ClassTable kEpTable{
    {64, 64, 64, 64},
    {1, 1, 1, 1},
    {0.002, 0.01, 0.05, 0.2},
    {2.5, 19.0, 150.0, 600.0}};
const ClassTable kCgTable{
    {4'000, 16'000, 75'000, 150'000},
    {4, 8, 12, 15},
    {0.0042, 0.021, 0.11, 0.42},
    {0.05, 0.2, 2.8, 15.0}};
const ClassTable kBtTable{
    {1'000, 4'000, 8'000, 12'000},
    {6, 10, 15, 20},
    {0.005, 0.027, 0.14, 0.53},
    {0.08, 0.4, 2.7, 6.0}};
const ClassTable kMgTable{
    {1'000, 4'000, 12'000, 16'000},
    {4, 6, 8, 10},
    {0.0043, 0.021, 0.11, 0.43},
    {0.06, 0.3, 2.8, 10.0}};
const ClassTable kIsTable{
    {2'048, 8'192, 131'072, 524'288},
    {4, 6, 8, 10},
    {0.0018, 0.009, 0.045, 0.18},
    {1.0, 3.0, 20.0, 70.0}};

const ClassTable& table_of(NasKernel k) {
  switch (k) {
    case NasKernel::kLU: return kLuTable;
    case NasKernel::kSP: return kSpTable;
    case NasKernel::kEP: return kEpTable;
    case NasKernel::kCG: return kCgTable;
    case NasKernel::kBT: return kBtTable;
    case NasKernel::kMG: return kMgTable;
    case NasKernel::kIS: return kIsTable;
  }
  return kLuTable;
}

sim::SimTime ms_to_sim(double ms) {
  return static_cast<sim::SimTime>(ms * 1e6);
}

void exchange_with(core::Mpi& mpi, int partner, int tag,
                   std::span<const std::byte> out, std::span<std::byte> in) {
  if (partner < 0 || partner >= mpi.size() || partner == mpi.rank()) return;
  core::Request r = mpi.irecv(in, partner, tag);
  mpi.send(out, partner, tag);
  mpi.wait(r);
}

// ---------------------------------------------------------------------------
// Kernel skeletons (8-rank layouts; degrade gracefully for other sizes)
// ---------------------------------------------------------------------------

// LU: SSOR wavefront on a 2x4 process grid. Each iteration runs two
// pipelined sweeps; every pipeline step sends small messages to the
// east/south (then west/north) neighbours — the NPB kernel famous for its
// many small messages.
void run_lu(core::Mpi& mpi, const ClassTable& t, NasClass c) {
  const int cols = mpi.size() >= 4 ? 4 : mpi.size();
  const int col = mpi.rank() % cols;
  const int row = mpi.rank() / cols;
  const int east = col + 1 < cols ? mpi.rank() + 1 : -1;
  const int west = col > 0 ? mpi.rank() - 1 : -1;
  const int south = (row + 1) * cols + col < mpi.size() ? mpi.rank() + cols
                                                        : -1;
  const int north = row > 0 ? mpi.rank() - cols : -1;

  const std::size_t msg = t.msg[static_cast<std::size_t>(idx(c))];
  const int iters = t.iters[static_cast<std::size_t>(idx(c))];
  constexpr int kPlanes = 8;  // pipeline depth per sweep
  const sim::SimTime step_compute = ms_to_sim(
      t.compute_ms[static_cast<std::size_t>(idx(c))] / (2.0 * kPlanes));

  std::vector<std::byte> out(msg, std::byte{1});
  std::vector<std::byte> in(msg);
  for (int it = 0; it < iters; ++it) {
    // Lower sweep: wavefront from the northwest corner.
    for (int p = 0; p < kPlanes; ++p) {
      if (north >= 0) mpi.recv(in, north, 10 + p);
      if (west >= 0) mpi.recv(in, west, 30 + p);
      mpi.compute(step_compute);
      if (south >= 0) mpi.send(out, south, 10 + p);
      if (east >= 0) mpi.send(out, east, 30 + p);
    }
    // Upper sweep: wavefront from the southeast corner.
    for (int p = 0; p < kPlanes; ++p) {
      if (south >= 0) mpi.recv(in, south, 50 + p);
      if (east >= 0) mpi.recv(in, east, 70 + p);
      mpi.compute(step_compute);
      if (north >= 0) mpi.send(out, north, 50 + p);
      if (west >= 0) mpi.send(out, west, 70 + p);
    }
  }
  // Residual norm.
  double norm = 1.0;
  std::vector<double> tmp(1);
  mpi.allreduce(std::span<const double>(&norm, 1), std::span<double>(tmp),
                core::OpSum{});
}

// SP/BT: ADI sweeps along three dimensions of a (logical) cube; each
// dimension exchanges face data with both neighbours. BT exchanges smaller
// faces plus extra small border messages (its short-message bias).
void run_adi(core::Mpi& mpi, const ClassTable& t, NasClass c,
             bool extra_small_borders) {
  const std::size_t msg = t.msg[static_cast<std::size_t>(idx(c))];
  const int iters = t.iters[static_cast<std::size_t>(idx(c))];
  const sim::SimTime compute =
      ms_to_sim(t.compute_ms[static_cast<std::size_t>(idx(c))] / 3.0);

  std::vector<std::byte> out(msg, std::byte{2});
  std::vector<std::byte> in(msg);
  std::vector<std::byte> small_out(2'048, std::byte{3});
  std::vector<std::byte> small_in(2'048);
  for (int it = 0; it < iters; ++it) {
    for (int dim = 0; dim < 3; ++dim) {
      const int partner = mpi.rank() ^ (1 << dim);  // hypercube faces
      mpi.compute(compute);
      exchange_with(mpi, partner, 100 + dim, out, in);
      if (extra_small_borders) {
        // BT: backward-sweep face plus the small border exchanges that
        // bias it toward short messages (paper §4.1.2).
        exchange_with(mpi, partner, 150 + dim, out, in);
        exchange_with(mpi, partner, 200 + dim, small_out, small_in);
        exchange_with(mpi, partner, 300 + dim, small_out, small_in);
      }
    }
  }
  std::vector<double> tmp(5, 0.5), res(5);
  mpi.allreduce(std::span<const double>(tmp), std::span<double>(res),
                core::OpSum{});
}

// EP: embarrassingly parallel — pure computation, three tiny reductions.
void run_ep(core::Mpi& mpi, const ClassTable& t, NasClass c) {
  mpi.compute(ms_to_sim(t.compute_ms[static_cast<std::size_t>(idx(c))]));
  for (int i = 0; i < 3; ++i) {
    std::vector<double> v(2, 1.0), r(2);
    mpi.allreduce(std::span<const double>(v), std::span<double>(r),
                  core::OpSum{});
  }
}

// CG: conjugate gradient — transpose exchanges with a partner plus two
// scalar reductions per iteration.
void run_cg(core::Mpi& mpi, const ClassTable& t, NasClass c) {
  const std::size_t msg = t.msg[static_cast<std::size_t>(idx(c))];
  const int iters = t.iters[static_cast<std::size_t>(idx(c))];
  const sim::SimTime compute =
      ms_to_sim(t.compute_ms[static_cast<std::size_t>(idx(c))]);
  const int partner = mpi.rank() ^ 1;

  std::vector<std::byte> out(msg, std::byte{4});
  std::vector<std::byte> in(msg);
  for (int it = 0; it < iters; ++it) {
    mpi.compute(compute / 2);
    exchange_with(mpi, partner, 400, out, in);
    mpi.compute(compute / 2);
    exchange_with(mpi, partner, 401, out, in);
    const double rho = mpi.allreduce_sum(1.0);
    (void)rho;
    const double beta = mpi.allreduce_sum(2.0);
    (void)beta;
  }
}

// MG: multigrid V-cycle — halo exchanges with three neighbours at every
// grid level; message sizes halve per level, so most messages are short
// even at class B (paper §4.1.2's explanation for TCP's edge here).
void run_mg(core::Mpi& mpi, const ClassTable& t, NasClass c) {
  const std::size_t top = t.msg[static_cast<std::size_t>(idx(c))];
  const int iters = t.iters[static_cast<std::size_t>(idx(c))];
  constexpr int kLevels = 6;
  const sim::SimTime compute_per_level = ms_to_sim(
      t.compute_ms[static_cast<std::size_t>(idx(c))] / (2.0 * kLevels));

  std::vector<std::byte> out(top, std::byte{5});
  std::vector<std::byte> in(top);
  for (int it = 0; it < iters; ++it) {
    // Down the V, then back up.
    for (int half = 0; half < 2; ++half) {
      for (int level = 0; level < kLevels; ++level) {
        const int l = half == 0 ? level : kLevels - 1 - level;
        std::size_t sz = top >> l;
        if (sz < 64) sz = 64;
        mpi.compute(compute_per_level);
        for (int dim = 0; dim < 3; ++dim) {
          const int partner = mpi.rank() ^ (1 << dim);
          exchange_with(mpi, partner, 500 + 10 * l + dim,
                        std::span(out).subspan(0, sz),
                        std::span(in).subspan(0, sz));
        }
      }
    }
    std::vector<double> v(1, 0.1), r(1);
    mpi.allreduce(std::span<const double>(v), std::span<double>(r),
                  core::OpMax{});
  }
}

// IS: integer sort — bucket-size alltoall (small) followed by the key
// redistribution alltoall (large; IS-B is the most alltoall-heavy kernel).
void run_is(core::Mpi& mpi, const ClassTable& t, NasClass c) {
  const std::size_t per_peer = t.msg[static_cast<std::size_t>(idx(c))];
  const int iters = t.iters[static_cast<std::size_t>(idx(c))];
  const sim::SimTime compute =
      ms_to_sim(t.compute_ms[static_cast<std::size_t>(idx(c))]);
  const auto n = static_cast<std::size_t>(mpi.size());

  std::vector<std::byte> counts_out(n * 1'024, std::byte{6});
  std::vector<std::byte> counts_in(n * 1'024);
  std::vector<std::byte> keys_out(n * per_peer, std::byte{7});
  std::vector<std::byte> keys_in(n * per_peer);
  for (int it = 0; it < iters; ++it) {
    mpi.compute(compute);
    mpi.alltoall(counts_out, counts_in);
    mpi.alltoall(keys_out, keys_in);
    const auto sum = mpi.allreduce_sum<std::int64_t>(1);
    (void)sum;
  }
}

}  // namespace

NasResult run_nas(core::WorldConfig cfg, NasKernel kernel, NasClass dataset) {
  core::World world(cfg);
  const ClassTable& t = table_of(kernel);
  double t_start = 0, t_end = 0;

  world.run([&](core::Mpi& mpi) {
    mpi.barrier();
    if (mpi.rank() == 0) t_start = mpi.wtime();
    switch (kernel) {
      case NasKernel::kLU: run_lu(mpi, t, dataset); break;
      case NasKernel::kSP: run_adi(mpi, t, dataset, false); break;
      case NasKernel::kEP: run_ep(mpi, t, dataset); break;
      case NasKernel::kCG: run_cg(mpi, t, dataset); break;
      case NasKernel::kBT: run_adi(mpi, t, dataset, true); break;
      case NasKernel::kMG: run_mg(mpi, t, dataset); break;
      case NasKernel::kIS: run_is(mpi, t, dataset); break;
    }
    mpi.barrier();
    if (mpi.rank() == 0) t_end = mpi.wtime();
  });

  NasResult r;
  r.kernel = kernel;
  r.dataset = dataset;
  r.runtime_seconds = t_end - t_start;
  r.mops_total = t.gops[static_cast<std::size_t>(idx(dataset))] * 1e3 /
                 r.runtime_seconds;
  return r;
}

}  // namespace sctpmpi::apps
