// Open-loop service workload against net::LoadBalancer: a fleet of
// simulated clients issues Poisson-arrival, log-normal-sized requests to a
// service VIP; a Maglev balancer steers them to a backend farm; backends
// answer the clients directly as the VIP (DSR). The paper's loss-resilience
// story retold at service scale: the same workload runs over TCP
// (connection per client, reconnect on failure) and SCTP (association per
// client, multihomed failover), and the result reports the response-tail
// difference plus request loss under backend churn and path blackout.
//
// The arrival process is OPEN-LOOP: request issue times come from a seeded
// Poisson process that does not slow down when the service degrades — the
// honest way to measure tail latency (closed loops self-throttle and hide
// queueing collapse). Requests that cannot complete are retried on a fresh
// connection/association with the ORIGINAL issue timestamp, so retry cost
// lands in the latency distribution rather than vanishing.
//
// Everything is deterministic from ServiceParams::seed: arrivals, sizes,
// client choice, and every protocol timer. A rerun reproduces the
// completion digest byte-for-byte; the chaos tier asserts exactly that.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>

#include "net/cluster.hpp"
#include "net/load_balancer.hpp"
#include "sctp/config.hpp"
#include "sim/time.hpp"
#include "tcp/config.hpp"

namespace sctpmpi::apps {

enum class ServiceTransport { kTcp, kSctp };
enum class ServiceTopology {
  kFlatMultihomed,  // K-subnet flat cluster, one VIP per subnet (failover)
  kFatTree,         // k-ary fat-tree, single VIP (scale/tails)
};

struct ServiceParams {
  ServiceTransport transport = ServiceTransport::kTcp;
  ServiceTopology topology = ServiceTopology::kFlatMultihomed;
  std::uint64_t seed = 1;

  unsigned backends = 4;
  unsigned client_hosts = 4;
  unsigned clients_per_host = 16;  // sockets/associations per client host
  unsigned interfaces = 2;         // flat-multihomed subnets (>= 1)
  unsigned fattree_k = 4;          // fat-tree arity (hosts = k^3/4)

  std::uint64_t requests = 2000;   // fleet-wide request budget
  double arrival_rate_hz = 5000;   // fleet-level Poisson arrival rate
  // Log-normal body sizes exp(N(mu, sigma)), clamped to [32, size_max]:
  // median ~e^mu bytes with a heavy tail.
  double size_mu = 6.5;   // ~665 B median
  double size_sigma = 1.0;
  std::size_t size_max = 8 * 1024;
  std::size_t response_size = 128;
  /// Simulated backend compute per request, before the response.
  sim::SimTime service_time = 20 * sim::kMicrosecond;

  /// Hard stop: unfinished requests are abandoned (counted as lost) here.
  sim::SimTime deadline = 60 * sim::kSecond;
  /// Client reconnect backoff after a connection/association failure.
  sim::SimTime reconnect_backoff = 100 * sim::kMillisecond;
  sim::SimTime reconnect_backoff_max = 1600 * sim::kMillisecond;

  tcp::TcpConfig tcp;
  sctp::SctpConfig sctp;
  net::LoadBalancerParams lb;
  bool lb_probes = true;
};

struct ServiceResult {
  std::uint64_t issued = 0;
  std::uint64_t completed = 0;
  std::uint64_t retried = 0;    // re-issued after a connection failure
  std::uint64_t abandoned = 0;  // unfinished at the deadline (= request loss)
  std::uint64_t reconnects = 0;
  std::uint64_t failovers = 0;  // SCTP path-failover notifications
  std::uint64_t duplicate_responses = 0;  // at-least-once retry artifacts
  std::uint64_t backend_down_events = 0;
  std::uint64_t backend_up_events = 0;
  /// Ejections announced through core::FailureBus, in announcement order.
  std::vector<int> failure_bus_log;

  // Response-time distribution (sim-time, milliseconds), completions only.
  double p50_ms = 0, p99_ms = 0, p999_ms = 0, mean_ms = 0, max_ms = 0;
  double runtime_seconds = 0;  // sim-time from first arrival to quiescence
  /// Order-sensitive FNV-1a over every completion (req id, sim time):
  /// equal digests = identical runs.
  std::uint64_t digest = 0;

  net::LoadBalancerStats lb;
};

class ServiceEngine;  // internal

/// Builds the cluster, balancer and fleet; lets chaos schedules hook in;
/// then runs to quiescence or the deadline.
class ServiceSim {
 public:
  explicit ServiceSim(ServiceParams params);
  ~ServiceSim();

  /// Schedules a chaos action (drain, weight change, blackout...) at
  /// absolute sim-time `t`. Call before run().
  void at(sim::SimTime t, std::function<void()> fn);

  net::LoadBalancer& lb();
  net::Cluster& cluster();
  /// Host id carrying backend `b` (for fault injection on its links).
  unsigned backend_host(unsigned b) const;
  unsigned lb_host() const;

  ServiceResult run();

 private:
  std::unique_ptr<ServiceEngine> engine_;
};

/// One-call wrapper: construct, apply `pre_run` (chaos hooks), run.
ServiceResult run_service(
    const ServiceParams& params,
    const std::function<void(ServiceSim&)>& pre_run = {});

}  // namespace sctpmpi::apps
