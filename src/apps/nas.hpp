// Communication skeletons of the NAS Parallel Benchmarks (NPB 3.2) used in
// the paper's Fig. 9 evaluation: LU, IS, MG, EP, CG, BT, SP (FT is skipped
// exactly as in the paper, which could not build it with mpif77).
//
// Substitution note (see DESIGN.md): we reproduce each kernel's
// communication pattern — neighbours, message sizes, collective mix — and
// model the numerical work as calibrated compute phases. Dataset classes
// S/W/A/B scale messages and work the way the paper describes (§4.1.2:
// classes S and W are dominated by short, <= 64 KiB messages; A and B send
// a greater share of long messages). Mop/s is reported against each
// kernel/class's nominal operation count, so relative transport effects —
// the paper's object of study — carry through.
#pragma once

#include <string>
#include <vector>

#include "core/world.hpp"

namespace sctpmpi::apps {

enum class NasKernel { kLU, kIS, kMG, kEP, kCG, kBT, kSP };
enum class NasClass { kS, kW, kA, kB };

const char* to_string(NasKernel k);
const char* to_string(NasClass c);

struct NasResult {
  NasKernel kernel;
  NasClass dataset;
  double runtime_seconds = 0;
  double mops_total = 0;  // nominal Mop/s, as NPB reports
};

/// Runs one kernel skeleton on a fresh world from `cfg` (8 ranks in the
/// paper's setup).
NasResult run_nas(core::WorldConfig cfg, NasKernel kernel, NasClass dataset);

/// All seven kernels, paper order (LU, SP, EP, CG, BT, MG, IS).
std::vector<NasKernel> nas_paper_order();

}  // namespace sctpmpi::apps
