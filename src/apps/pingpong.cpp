#include "apps/pingpong.hpp"

#include <vector>

namespace sctpmpi::apps {

PingPongResult run_pingpong(core::WorldConfig cfg, PingPongParams params) {
  cfg.ranks = 2;
  core::World world(cfg);
  PingPongResult result;

  world.run([&](core::Mpi& mpi) {
    std::vector<std::byte> buf(params.message_size, std::byte{0x5A});
    std::vector<std::byte> rx(params.message_size);
    const int peer = 1 - mpi.rank();
    constexpr int kTag = 0;  // MPBench: all messages share one tag

    auto one_round = [&] {
      if (mpi.rank() == 0) {
        mpi.send(buf, peer, kTag);
        mpi.recv(rx, peer, kTag);
      } else {
        mpi.recv(rx, peer, kTag);
        mpi.send(buf, peer, kTag);
      }
    };

    for (int i = 0; i < params.warmup; ++i) one_round();
    mpi.barrier();
    const double t0 = mpi.wtime();
    for (int i = 0; i < params.iterations; ++i) one_round();
    const double t1 = mpi.wtime();

    if (mpi.rank() == 0) {
      result.loop_seconds = t1 - t0;
      result.rtt_avg = (t1 - t0) / params.iterations;
      result.throughput_Bps =
          static_cast<double>(params.message_size) * params.iterations /
          (t1 - t0);
    }
  });
  return result;
}

}  // namespace sctpmpi::apps
