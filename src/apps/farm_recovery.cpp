#include "apps/farm_recovery.hpp"

#include <cassert>
#include <deque>
#include <vector>

namespace sctpmpi::apps {

namespace {

// Tag 0 carries worker->manager requests (1 byte) and results (8 bytes:
// task id + check value), and manager->worker terminations (4 bytes).
// Task payloads travel on tags 1..max_work_tags so distinct task types
// keep landing on distinct SCTP streams, as in the stock farm.
constexpr int kCtlTag = 0;

void put_u32(std::byte* p, std::uint32_t v) {
  p[0] = static_cast<std::byte>(v >> 24);
  p[1] = static_cast<std::byte>(v >> 16);
  p[2] = static_cast<std::byte>(v >> 8);
  p[3] = static_cast<std::byte>(v);
}

std::uint32_t get_u32(const std::byte* p) {
  return (static_cast<std::uint32_t>(p[0]) << 24) |
         (static_cast<std::uint32_t>(p[1]) << 16) |
         (static_cast<std::uint32_t>(p[2]) << 8) |
         static_cast<std::uint32_t>(p[3]);
}

// Task ownership markers (owner[] holds a worker rank otherwise).
constexpr int kUnassigned = -1;
constexpr int kDone = -2;

}  // namespace

// Request/reply accounting: every request a worker sends is answered with
// exactly one message — a task or a termination. A worker keeps `window`
// requests outstanding, issues a replacement request per task received,
// and exits once `window` terminations arrived (all its requests are then
// retired). The manager terminates a request only when every task is done,
// so counts balance on both sides no matter how replies interleave.
//
// Failure rule: a worker declared dead has its unfinished tasks returned
// to the pool; its pending request (if deferred) is dropped; it is no
// longer required to retire. Schedules must not revive a worker after it
// was written off — a revived "zombie" would keep requesting work after
// the manager exited and hang the job (see DESIGN.md, failure semantics).
FarmRecoveryResult run_farm_recovering(
    core::WorldConfig cfg, FarmRecoveryParams params,
    const std::function<void(core::World&)>& pre_run) {
  assert(cfg.ranks >= 2);
  assert(cfg.enable_lamd && "failure events need the control plane");
  assert(params.task_size >= 4);
  core::World world(cfg);
  if (pre_run) pre_run(world);
  FarmRecoveryResult result;

  world.run([&](core::Mpi& mpi) {
    const int nworkers = mpi.size() - 1;

    if (mpi.rank() == 0) {
      // ---- Manager ------------------------------------------------------
      const int ntasks = params.num_tasks;
      std::vector<int> owner(static_cast<std::size_t>(ntasks), kUnassigned);
      std::deque<std::uint32_t> pool;
      for (int t = 0; t < ntasks; ++t) {
        pool.push_back(static_cast<std::uint32_t>(t));
      }
      std::vector<std::vector<std::uint32_t>> outstanding(
          static_cast<std::size_t>(mpi.size()));
      std::vector<bool> live(static_cast<std::size_t>(mpi.size()), true);
      std::vector<int> terms_sent(static_cast<std::size_t>(mpi.size()), 0);
      std::deque<int> waiting;  // workers whose request is deferred
      int done_tasks = 0;
      int alive_workers = nworkers;
      int next_tag = 1;

      std::vector<std::byte> task(params.task_size, std::byte{0x7});
      std::byte term[4];
      put_u32(term, 0xFFFFFFFFu);

      // Worker->manager traffic in flight is bounded by the request window
      // plus one result per outstanding task reply.
      const int slots = nworkers * (2 * params.window + 2);
      std::vector<std::vector<std::byte>> bufs(
          static_cast<std::size_t>(slots), std::vector<std::byte>(8));
      std::vector<core::Request> recvs(static_cast<std::size_t>(slots));
      for (int i = 0; i < slots; ++i) {
        recvs[static_cast<std::size_t>(i)] = mpi.irecv(
            bufs[static_cast<std::size_t>(i)], core::kAnySource, kCtlTag);
      }

      auto assign = [&](int w) {
        const std::uint32_t id = pool.front();
        pool.pop_front();
        owner[id] = w;
        outstanding[static_cast<std::size_t>(w)].push_back(id);
        put_u32(task.data(), id);
        mpi.send(task, w, next_tag);
        next_tag = next_tag % params.max_work_tags + 1;
      };
      auto terminate_one = [&](int w) {
        mpi.send(std::span<const std::byte>(term, 4), w, kCtlTag);
        ++terms_sent[static_cast<std::size_t>(w)];
      };
      auto serve = [&](int w) {
        if (!live[static_cast<std::size_t>(w)]) {
          // Written off but still talking (should not happen under the
          // schedule contract): unwind it with a termination.
          terminate_one(w);
        } else if (!pool.empty()) {
          assign(w);
        } else if (done_tasks == ntasks) {
          terminate_one(w);
        } else {
          waiting.push_back(w);  // tasks still in flight elsewhere
        }
      };
      auto retired = [&] {
        if (done_tasks < ntasks) return false;
        for (int w = 1; w < mpi.size(); ++w) {
          if (live[static_cast<std::size_t>(w)] &&
              terms_sent[static_cast<std::size_t>(w)] < params.window) {
            return false;
          }
        }
        return true;
      };
      auto on_worker_dead = [&](int w) {
        if (w <= 0 || w >= mpi.size() || !live[static_cast<std::size_t>(w)]) {
          return;
        }
        live[static_cast<std::size_t>(w)] = false;
        --alive_workers;
        ++result.workers_failed;
        auto& out = outstanding[static_cast<std::size_t>(w)];
        for (std::uint32_t id : out) {
          if (owner[id] == w) {
            owner[id] = kUnassigned;
            pool.push_back(id);
            ++result.reassigned_tasks;
          }
        }
        out.clear();
        std::erase(waiting, w);
        // Hand the recovered tasks to whoever was starved waiting.
        while (!pool.empty() && !waiting.empty()) {
          const int ww = waiting.front();
          waiting.pop_front();
          assign(ww);
        }
      };

      while (!retired()) {
        if (alive_workers == 0 && done_tasks < ntasks) {
          result.aborted = true;  // nobody left to run the pool
          break;
        }
        core::MpiStatus st;
        int failed = -1;
        const int idx = mpi.waitany_or_failure(recvs, &st, &failed);
        if (idx < 0) {
          on_worker_dead(failed);
          continue;
        }
        const int w = st.source;
        const auto& buf = bufs[static_cast<std::size_t>(idx)];
        if (st.count == 8) {
          // Result: accept exactly once, keyed by task id.
          const std::uint32_t id = get_u32(buf.data());
          const std::uint32_t val = get_u32(buf.data() + 4);
          assert(val == farm_task_result(id));
          if (static_cast<int>(id) < ntasks && owner[id] != kDone) {
            owner[id] = kDone;
            ++done_tasks;
            result.result_sum += val;
            auto& out = outstanding[static_cast<std::size_t>(w)];
            std::erase(out, id);
            if (done_tasks == ntasks) {
              // Pool dry and every task accounted for: retire the floor.
              while (!waiting.empty()) {
                terminate_one(waiting.front());
                waiting.pop_front();
              }
            }
          } else {
            ++result.duplicate_results;
          }
        } else if (st.count == 1) {
          serve(w);  // request
        }  // 2-byte liveness nudges are dropped on the floor
        recvs[static_cast<std::size_t>(idx)] = mpi.irecv(
            bufs[static_cast<std::size_t>(idx)], core::kAnySource, kCtlTag);
      }
      for (auto& r : recvs) mpi.cancel(r);
      result.tasks_completed = done_tasks;
    } else {
      // ---- Worker ---------------------------------------------------------
      std::vector<std::vector<std::byte>> bufs(
          static_cast<std::size_t>(params.window),
          std::vector<std::byte>(params.task_size));
      std::vector<core::Request> recvs(
          static_cast<std::size_t>(params.window));
      for (int i = 0; i < params.window; ++i) {
        recvs[static_cast<std::size_t>(i)] =
            mpi.irecv(bufs[static_cast<std::size_t>(i)], 0, core::kAnyTag);
      }
      std::byte req{1};
      for (int i = 0; i < params.window; ++i) {
        mpi.send(std::span(&req, 1), 0, kCtlTag);
      }

      int terms = 0;
      while (terms < params.window) {
        core::MpiStatus st;
        int failed = -1;
        // The 1 s timeout is the worker's isolation detector: an idle
        // worker has no traffic in flight, so a blacked-out link would
        // never surface a transport error. The periodic nudge gives the
        // transport something to fail on; the RPI then runs its give-up
        // protocol and announces the manager unreachable.
        const int idx =
            mpi.waitany_or_failure(recvs, &st, &failed, sim::kSecond);
        if (idx == -2) {
          std::byte nudge[2] = {std::byte{0}, std::byte{0}};
          mpi.send(std::span<const std::byte>(nudge, 2), 0, kCtlTag);
          continue;
        }
        if (idx < 0) {
          if (failed == 0) break;  // isolated: the manager is unreachable
          continue;                // some other worker died — not our task
        }
        if (st.tag == kCtlTag) {
          ++terms;  // a request retired with no replacement
          continue;
        }
        const std::uint32_t id =
            get_u32(bufs[static_cast<std::size_t>(idx)].data());
        mpi.compute(params.work_per_task);
        std::byte res[8];
        put_u32(res, id);
        put_u32(res + 4, farm_task_result(id));
        mpi.send(std::span<const std::byte>(res, 8), 0, kCtlTag);
        recvs[static_cast<std::size_t>(idx)] = mpi.irecv(
            bufs[static_cast<std::size_t>(idx)], 0, core::kAnyTag);
        mpi.send(std::span(&req, 1), 0, kCtlTag);
      }
      for (auto& r : recvs) mpi.cancel(r);
    }
  });

  result.total_runtime_seconds = world.elapsed_seconds();
  return result;
}

}  // namespace sctpmpi::apps
