// Many-flow open-loop workload: every rank streams eager messages to a
// ring of `fanout` neighbour ranks while draining pre-posted wildcard
// receives. Unlike the farm (one manager serializing every request), no
// rank is a hot spot: traffic is spread uniformly over the topology, which
// is what exercises ECMP spreading on a fat-tree and gives the sharded
// simulator a workload whose events split evenly across shards.
//
// The injection is open-loop: a rank posts its round of isends, reaps
// whatever receives have already landed without blocking, and moves on —
// no end-to-end request/reply coupling. Messages stay at or below the
// eager limit so progression never needs a rendezvous round-trip (an
// all-to-all rendezvous storm can deadlock an open loop; eager traffic
// cannot, it just queues as unexpected messages).
#pragma once

#include <cstddef>

#include "core/world.hpp"

namespace sctpmpi::apps {

struct ManyflowParams {
  int msgs_per_peer = 64;           // messages sent to each neighbour
  std::size_t msg_size = 8 * 1024;  // must stay <= RpiConfig::eager_limit
  int fanout = 3;                   // neighbour ranks: r+1 .. r+fanout
  int recv_window = 32;             // pre-posted wildcard receives
  /// Per-round injection gap (0 = as fast as the stack accepts).
  sim::SimTime think_time = 0;
};

struct ManyflowResult {
  double total_runtime_seconds = 0;
  std::uint64_t messages_received = 0;  // summed over all ranks
  /// Application payload drained per second of virtual time, all ranks.
  double aggregate_goodput_mb_s = 0;
};

/// Runs the workload on a fresh World built from `cfg` (needs >= 2 ranks).
/// The optional hook runs after construction, before the job starts.
ManyflowResult run_manyflow(
    core::WorldConfig cfg, ManyflowParams params,
    const std::function<void(core::World&)>& pre_run = {});

}  // namespace sctpmpi::apps
