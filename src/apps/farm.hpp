// Bulk Processor Farm (paper §4.2.1): a request-driven manager/worker
// program, "typical of real-world manager-worker programs".
//
// One manager (rank 0) creates NumTasks tasks and distributes them to
// workers on demand; it services requests in arrival order
// (MPI_ANY_SOURCE). Every task carries a type, expressed as its MPI tag
// (cycling through MaxWorkTags tags), so under the SCTP module different
// task types travel on different streams. Workers keep a fixed number of
// outstanding requests (10 in the paper), pre-post non-blocking receives
// with MPI_ANY_TAG, and overlap task processing (a compute phase) with
// communication — the latency-tolerant structure the paper argues SCTP
// rewards. `fanout` tasks are returned per request (Fig. 10: 1,
// Fig. 11: 10).
#pragma once

#include <cstddef>

#include "core/world.hpp"

namespace sctpmpi::apps {

struct FarmParams {
  int num_tasks = 10'000;           // paper: 10,000
  std::size_t task_size = 30 * 1024;  // short: 30 KiB, long: 300 KiB
  int fanout = 1;                   // tasks per request (1 or 10)
  int outstanding_requests = 10;    // per worker, paper §4.2.1
  int max_work_tags = 10;           // distinct task types / tags
  /// Per-task processing time on a worker (the computation overlapped
  /// with communication).
  sim::SimTime work_per_task = sim::kMillisecond;
};

struct FarmResult {
  double total_runtime_seconds = 0;
  int tasks_completed = 0;
  std::uint64_t manager_requests_served = 0;
};

/// Runs the farm on a fresh World built from `cfg` (needs >= 2 ranks;
/// the paper used 8: one manager + 7 workers). The optional hook runs
/// after the World is constructed and before the job starts (tests use it
/// to install drop filters or wire taps).
FarmResult run_farm(core::WorldConfig cfg, FarmParams params,
                    const std::function<void(core::World&)>& pre_run = {});

}  // namespace sctpmpi::apps
