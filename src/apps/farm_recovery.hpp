// Failure-aware Bulk Processor Farm: the paper's manager/worker program
// (§4.2.1) restructured so the job completes even when workers die.
//
// The stock farm (farm.hpp) assumes every rank survives; one lost worker
// deadlocks the manager. This variant gives every task an identity, makes
// the manager track which worker owns which task, and subscribes the
// manager to the rank-failure events World's control plane publishes
// (LamDaemon dead-node verdicts + local RPI give-ups, fanned out on the
// FailureBus). When a worker is declared dead its unfinished tasks return
// to the pool and are reassigned; duplicate results from a worker that
// was written off but revived are detected by task id and dropped. The
// job is correct iff every task's result arrives exactly once.
//
// Requires WorldConfig.enable_lamd and RpiConfig.recovery.enabled — with
// recovery off, a worker loss stalls the job exactly like stock LAM.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>

#include "core/world.hpp"

namespace sctpmpi::apps {

struct FarmRecoveryParams {
  int num_tasks = 200;
  std::size_t task_size = 8 * 1024;  // payload per task (id + filler)
  int window = 4;                    // outstanding requests per worker
  int max_work_tags = 10;            // task tags 1..max (stream spread)
  sim::SimTime work_per_task = sim::kMillisecond;
};

/// The check value a worker reports for task `id` (Knuth multiplicative
/// hash — cheap, deterministic, and wrong answers cannot collide with
/// other tasks' right answers).
inline std::uint32_t farm_task_result(std::uint32_t id) {
  return id * 2654435761u;
}

struct FarmRecoveryResult {
  double total_runtime_seconds = 0;
  int tasks_completed = 0;          // distinct tasks with a result
  std::uint64_t result_sum = 0;     // sum of all accepted results
  int reassigned_tasks = 0;         // pool returns from dead workers
  int duplicate_results = 0;        // dropped by task-id dedup
  int workers_failed = 0;           // distinct workers written off
  bool aborted = false;             // every worker died: gave up
};

/// Runs the failure-aware farm on a fresh World built from `cfg` (>= 2
/// ranks). The hook runs after World construction, before the job —
/// chaos tests use it to install fault schedules.
FarmRecoveryResult run_farm_recovering(
    core::WorldConfig cfg, FarmRecoveryParams params,
    const std::function<void(core::World&)>& pre_run = {});

}  // namespace sctpmpi::apps
