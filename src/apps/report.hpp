// Small fixed-width table printer for the benchmark binaries, so every
// bench emits paper-style rows that are easy to diff against
// EXPERIMENTS.md.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace sctpmpi::apps {

class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void add_row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  void print() const {
    std::vector<std::size_t> width(headers_.size());
    for (std::size_t i = 0; i < headers_.size(); ++i) {
      width[i] = headers_[i].size();
    }
    for (const auto& row : rows_) {
      for (std::size_t i = 0; i < row.size() && i < width.size(); ++i) {
        width[i] = std::max(width[i], row[i].size());
      }
    }
    auto print_row = [&](const std::vector<std::string>& cells) {
      std::printf("|");
      for (std::size_t i = 0; i < width.size(); ++i) {
        const std::string& c = i < cells.size() ? cells[i] : empty_;
        std::printf(" %-*s |", static_cast<int>(width[i]), c.c_str());
      }
      std::printf("\n");
    };
    print_row(headers_);
    std::printf("|");
    for (std::size_t i = 0; i < width.size(); ++i) {
      std::printf("%s|", std::string(width[i] + 2, '-').c_str());
    }
    std::printf("\n");
    for (const auto& row : rows_) print_row(row);
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
  std::string empty_;
};

inline std::string fmt(const char* format, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, format, v);
  return buf;
}

}  // namespace sctpmpi::apps
