// Small fixed-width table printer for the benchmark binaries, so every
// bench emits paper-style rows that are easy to diff against
// EXPERIMENTS.md — plus exact sorted-sample quantile helpers for the
// tail-latency reports (service workload p50/p99/p999).
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

namespace sctpmpi::apps {

/// Exact empirical quantile of a SORTED sample: linear interpolation
/// between closest ranks (the R-7 / NumPy default definition), so p=0 is
/// the minimum, p=1 the maximum and p=0.5 the median. NaN on empty input.
inline double quantile_sorted(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return std::nan("");
  if (sorted.size() == 1) return sorted.front();
  p = std::min(1.0, std::max(0.0, p));
  const double rank = p * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  if (lo + 1 >= sorted.size()) return sorted.back();
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[lo + 1] - sorted[lo]);
}

/// Sorting variant for unsorted samples (copies; tail reports are cold).
inline double quantile(std::vector<double> sample, double p) {
  std::sort(sample.begin(), sample.end());
  return quantile_sorted(sample, p);
}

/// The standard latency-tail summary in one pass over one sort.
struct TailSummary {
  std::size_t count = 0;
  double min = 0, p50 = 0, p99 = 0, p999 = 0, max = 0, mean = 0;
};

inline TailSummary tail_summary(std::vector<double> sample) {
  TailSummary t;
  if (sample.empty()) return t;
  std::sort(sample.begin(), sample.end());
  t.count = sample.size();
  t.min = sample.front();
  t.max = sample.back();
  t.p50 = quantile_sorted(sample, 0.50);
  t.p99 = quantile_sorted(sample, 0.99);
  t.p999 = quantile_sorted(sample, 0.999);
  double sum = 0;
  for (const double v : sample) sum += v;
  t.mean = sum / static_cast<double>(t.count);
  return t;
}

class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void add_row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  void print() const {
    std::vector<std::size_t> width(headers_.size());
    for (std::size_t i = 0; i < headers_.size(); ++i) {
      width[i] = headers_[i].size();
    }
    for (const auto& row : rows_) {
      for (std::size_t i = 0; i < row.size() && i < width.size(); ++i) {
        width[i] = std::max(width[i], row[i].size());
      }
    }
    auto print_row = [&](const std::vector<std::string>& cells) {
      std::printf("|");
      for (std::size_t i = 0; i < width.size(); ++i) {
        const std::string& c = i < cells.size() ? cells[i] : empty_;
        std::printf(" %-*s |", static_cast<int>(width[i]), c.c_str());
      }
      std::printf("\n");
    };
    print_row(headers_);
    std::printf("|");
    for (std::size_t i = 0; i < width.size(); ++i) {
      std::printf("%s|", std::string(width[i] + 2, '-').c_str());
    }
    std::printf("\n");
    for (const auto& row : rows_) print_row(row);
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
  std::string empty_;
};

inline std::string fmt(const char* format, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, format, v);
  return buf;
}

}  // namespace sctpmpi::apps
