#include "apps/service.hpp"

#include <algorithm>
#include <cassert>
#include <deque>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "apps/report.hpp"
#include "core/failure.hpp"
#include "net/bytes.hpp"
#include "sctp/socket.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "tcp/socket.hpp"

namespace sctpmpi::apps {

namespace {

constexpr std::uint32_t kReqMagic = 0x53525131;   // "SRQ1"
constexpr std::uint32_t kRespMagic = 0x53525031;  // "SRP1"
constexpr std::size_t kFrameHeader = 16;  // magic u32, req id u64, len u32
constexpr std::uint16_t kServicePort = 80;
constexpr std::uint16_t kClientPortBase = 10000;
constexpr std::uint16_t kRetryPortBase = 40000;

// RNG stream ids: clusters own (s*1000+h)*2(+1) and 1<<32.. (fat-tree);
// these must not collide.
constexpr std::uint64_t kStackStreamBase = 3ull << 40;
constexpr std::uint64_t kWorkloadStream = 7ull << 40;

void put_frame(std::vector<std::byte>& out, std::uint32_t magic,
               std::uint64_t req_id, std::uint32_t body_len) {
  net::ByteWriter w(out);
  w.u32(magic);
  w.u64(req_id);
  w.u32(body_len);
  out.resize(out.size() + body_len);  // zero body: sizes, not content
}

struct Frame {
  std::uint32_t magic = 0;
  std::uint64_t req_id = 0;
  std::uint32_t body_len = 0;
};

/// Parses one complete frame from the front of `buf`; consumes it and
/// returns true, or returns false when bytes are still missing.
bool take_frame(std::vector<std::byte>& buf, Frame& f) {
  if (buf.size() < kFrameHeader) return false;
  net::ByteReader r(buf);
  f.magic = r.u32();
  f.req_id = r.u64();
  f.body_len = r.u32();
  const std::size_t total = kFrameHeader + f.body_len;
  if (buf.size() < total) return false;
  buf.erase(buf.begin(), buf.begin() + static_cast<std::ptrdiff_t>(total));
  return true;
}

}  // namespace

// ===========================================================================
// ServiceEngine
// ===========================================================================

class ServiceEngine {
 public:
  explicit ServiceEngine(ServiceParams p);

  void at(sim::SimTime t, std::function<void()> fn) {
    sim_.schedule_at(t, std::move(fn));
  }
  net::LoadBalancer& lb() { return *lb_; }
  net::Cluster& cluster() { return *cluster_; }
  unsigned backend_host(unsigned b) const { return backend_host_base_ + b; }
  unsigned lb_host() const { return lb_host_; }

  ServiceResult run();

 private:
  struct Request {
    std::uint64_t id = 0;
    std::uint32_t size = 0;
    sim::SimTime issue_time = 0;
  };

  struct Client {
    unsigned host = 0;
    std::uint16_t sport = 0;
    // Exactly one of the two is used, per transport.
    tcp::TcpSocket* tcp = nullptr;
    sctp::SctpSocket* sctp = nullptr;
    sctp::AssocId assoc = 0;
    bool connected = false;
    bool connecting = false;
    std::deque<Request> pending;      // not yet (fully) sent
    std::deque<Request> outstanding;  // sent, awaiting response
    std::vector<std::byte> frame;     // TCP: serialized front request
    std::size_t write_off = 0;        // TCP: bytes of `frame` accepted
    std::vector<std::byte> inbuf;     // TCP: response reassembly
    unsigned attempts = 0;            // consecutive failed connects
    std::unique_ptr<sim::Timer> reconnect_timer;
  };

  struct TcpConn {  // backend side, one per accepted socket
    std::vector<std::byte> inbuf;
    std::vector<std::byte> outbuf;
  };

  struct Backend {
    unsigned host = 0;
    tcp::TcpStack* tstack = nullptr;
    tcp::TcpSocket* listener = nullptr;
    sctp::SctpStack* sstack = nullptr;
    sctp::SctpSocket* ssock = nullptr;
    std::unique_ptr<net::HealthResponder> health;
    std::unordered_map<tcp::TcpSocket*, TcpConn> conns;
    // SCTP responses deferred by a full send buffer.
    std::deque<std::pair<sctp::AssocId, std::uint64_t>> outbox;
    std::uint64_t served = 0;
  };

  bool tcp_mode() const {
    return params_.transport == ServiceTransport::kTcp;
  }

  void build_fleet_();
  void issue_next_();
  void connect_client_(Client& c);
  void pump_client_(Client& c);
  void drain_client_notifications_(Client& c);
  void read_client_tcp_(Client& c);
  void fail_client_(Client& c);
  void complete_(Client& c, std::uint64_t req_id);
  void accept_loop_(Backend& b);
  void pump_conn_(Backend& b, tcp::TcpSocket* s);
  void flush_conn_(Backend& b, tcp::TcpSocket* s);
  void serve_request_(Backend& b, tcp::TcpSocket* conn, sctp::AssocId assoc,
                      std::uint16_t sid, std::uint64_t req_id);
  void pump_backend_sctp_(Backend& b);
  void maybe_finish_();
  void finish_at_deadline_();

  ServiceParams params_;
  sim::Simulator sim_;
  std::unique_ptr<net::Cluster> cluster_;
  std::unique_ptr<net::LoadBalancer> lb_;
  std::vector<net::IpAddr> vips_;
  unsigned lb_host_ = 0;
  unsigned backend_host_base_ = 0;
  unsigned client_host_count_ = 0;

  std::vector<std::unique_ptr<tcp::TcpStack>> tcp_stacks_;    // per host id
  std::vector<std::unique_ptr<sctp::SctpStack>> sctp_stacks_;
  std::vector<std::unique_ptr<Client>> clients_;
  std::vector<std::unique_ptr<Backend>> backends_;
  core::FailureBus bus_;

  sim::Rng rng_workload_;
  std::unique_ptr<sim::Timer> arrival_timer_;
  std::unique_ptr<sim::Timer> deadline_timer_;
  double mean_gap_ns_ = 0;
  std::uint16_t next_retry_sport_ = kRetryPortBase;

  bool done_ = false;
  sim::SimTime first_arrival_ = 0;
  sim::SimTime last_event_ = 0;
  std::uint64_t next_req_id_ = 1;
  ServiceResult res_;
  std::vector<double> samples_ms_;
  std::vector<std::byte> scratch_;
  std::vector<std::byte> zero_body_;
};

ServiceEngine::ServiceEngine(ServiceParams p)
    : params_(p),
      bus_(static_cast<int>(p.backends) + 1),
      rng_workload_(0) {
  sim::Rng root(params_.seed);
  rng_workload_ = root.fork(kWorkloadStream);

  net::ClusterParams cp;
  cp.link.loss = 0.0;
  if (params_.topology == ServiceTopology::kFatTree) {
    const unsigned k = params_.fattree_k;
    const unsigned total = k * k * k / 4;
    if (params_.backends + 1 >= total) {
      throw std::invalid_argument("service: fat-tree too small for farm");
    }
    cp.topology = net::TopologyKind::kFatTree;
    cp.fattree.k = k;
    cp.hosts = total;
    cp.interfaces = 1;
    lb_host_ = total - 1;
    backend_host_base_ = total - 1 - params_.backends;
    client_host_count_ = backend_host_base_;
    vips_.push_back(net::make_addr(9, 0));  // any unused subnet octet
  } else {
    cp.topology = net::TopologyKind::kFlat;
    cp.interfaces = std::max(1u, params_.interfaces);
    cp.hosts = params_.client_hosts + params_.backends + 1;
    lb_host_ = cp.hosts - 1;
    backend_host_base_ = params_.client_hosts;
    client_host_count_ = params_.client_hosts;
    for (unsigned s = 0; s < cp.interfaces; ++s) {
      vips_.push_back(net::make_addr(s, cp.hosts + 7));
    }
  }
  cluster_ = std::make_unique<net::Cluster>(sim_, root, cp);
  for (const net::IpAddr vip : vips_) {
    cluster_->add_service_route(vip, lb_host_);
  }

  lb_ = std::make_unique<net::LoadBalancer>(cluster_->host(lb_host_),
                                            params_.lb);
  for (const net::IpAddr vip : vips_) lb_->add_vip(vip);
  lb_->set_backend_down_callback([this](int b) {
    ++res_.backend_down_events;
    // The operator (subscriber 0) hears every ejection, exactly as ranks
    // hear a dead peer; FailureBus dedups repeats per subscriber.
    bus_.announce_to(0, b);
  });
  lb_->set_backend_up_callback([this](int) { ++res_.backend_up_events; });

  build_fleet_();

  mean_gap_ns_ = 1e9 / params_.arrival_rate_hz;
  arrival_timer_ =
      std::make_unique<sim::Timer>(sim_, [this] { issue_next_(); });
  deadline_timer_ =
      std::make_unique<sim::Timer>(sim_, [this] { finish_at_deadline_(); });

  scratch_.resize(params_.size_max + 4096);
  zero_body_.resize(params_.size_max);
}

void ServiceEngine::build_fleet_() {
  sim::Rng root(params_.seed);
  const unsigned hosts = cluster_->host_count();
  tcp_stacks_.resize(hosts);
  sctp_stacks_.resize(hosts);
  auto stack_rng = [&](unsigned h) { return root.fork(kStackStreamBase + h); };

  // Backends: transport stack + VIP-bound service socket + probe echo.
  for (unsigned b = 0; b < params_.backends; ++b) {
    auto be = std::make_unique<Backend>();
    Backend& bk = *be;
    bk.host = backend_host_base_ + b;
    net::Host& host = cluster_->host(bk.host);
    bk.health = std::make_unique<net::HealthResponder>(host);
    if (tcp_mode()) {
      tcp_stacks_[bk.host] = std::make_unique<tcp::TcpStack>(
          host, params_.tcp, stack_rng(bk.host));
      bk.tstack = tcp_stacks_[bk.host].get();
      bk.listener = bk.tstack->create_socket();
      bk.listener->bind(vips_[0], kServicePort);
      bk.listener->listen();
      bk.listener->set_activity_callback([this, &bk] { accept_loop_(bk); });
    } else {
      sctp_stacks_[bk.host] = std::make_unique<sctp::SctpStack>(
          host, params_.sctp, stack_rng(bk.host));
      bk.sstack = sctp_stacks_[bk.host].get();
      bk.ssock = bk.sstack->create_socket(kServicePort);
      bk.ssock->set_local_addrs(vips_);
      bk.ssock->listen(true);
      bk.ssock->set_activity_callback(
          [this, &bk] { pump_backend_sctp_(bk); });
    }
    std::vector<net::IpAddr> real;
    for (unsigned i = 0; i < cluster_->interface_count(); ++i) {
      real.push_back(cluster_->addr(bk.host, i));
    }
    lb_->add_backend(std::move(real));
    backends_.push_back(std::move(be));
  }

  // Clients: one socket/association per simulated client, fleet-unique
  // source ports so the balancer's ports-only tracking key never collides.
  for (unsigned h = 0; h < client_host_count_; ++h) {
    net::Host& host = cluster_->host(h);
    if (tcp_mode()) {
      tcp_stacks_[h] = std::make_unique<tcp::TcpStack>(host, params_.tcp,
                                                       stack_rng(h));
    } else {
      sctp_stacks_[h] = std::make_unique<sctp::SctpStack>(host, params_.sctp,
                                                          stack_rng(h));
    }
    for (unsigned j = 0; j < params_.clients_per_host; ++j) {
      auto cl = std::make_unique<Client>();
      Client& c = *cl;
      c.host = h;
      c.sport = static_cast<std::uint16_t>(kClientPortBase +
                                           clients_.size());
      c.reconnect_timer = std::make_unique<sim::Timer>(
          sim_, [this, &c] { connect_client_(c); });
      clients_.push_back(std::move(cl));
    }
  }
  if (clients_.size() > kRetryPortBase - kClientPortBase) {
    throw std::invalid_argument("service: client port space exhausted");
  }
}

// ---------------------------------------------------------------------------
// Client side
// ---------------------------------------------------------------------------

void ServiceEngine::connect_client_(Client& c) {
  c.connecting = true;
  c.connected = false;
  if (tcp_mode()) {
    // A fresh socket per attempt: TCP connections are not resumable. The
    // first attempt uses the client's stable port (so the balancer steers
    // it like any flow); retries draw fleet-unique ports, which re-rolls
    // the Maglev choice away from a dead backend.
    tcp::TcpSocket* s = tcp_stacks_[c.host]->create_socket();
    c.tcp = s;
    const std::uint16_t port =
        c.attempts == 0 ? c.sport
                        : static_cast<std::uint16_t>(next_retry_sport_++);
    s->bind(port);
    s->set_activity_callback([this, &c] {
      if (c.tcp != nullptr && c.tcp->connected() && !c.connected) {
        c.connected = true;
        c.connecting = false;
        c.attempts = 0;
      }
      read_client_tcp_(c);
      pump_client_(c);
    });
    s->set_error_callback([this, &c](const char*) { fail_client_(c); });
    s->connect(vips_[0], kServicePort);
  } else {
    if (c.sctp == nullptr) {
      c.sctp = sctp_stacks_[c.host]->create_socket(c.sport);
      c.sctp->set_activity_callback([this, &c] {
        drain_client_notifications_(c);
        pump_client_(c);
      });
    }
    std::vector<net::IpAddr> alternates(vips_.begin() + 1, vips_.end());
    c.assoc = c.sctp->connect(vips_[0], kServicePort, alternates);
  }
}

void ServiceEngine::drain_client_notifications_(Client& c) {
  while (auto n = c.sctp->poll_notification()) {
    switch (n->type) {
      case sctp::NotificationType::kCommUp:
        if (n->assoc == c.assoc) {
          c.connected = true;
          c.connecting = false;
          c.attempts = 0;
        }
        break;
      case sctp::NotificationType::kCommLost:
        if (n->assoc == c.assoc) fail_client_(c);
        break;
      case sctp::NotificationType::kPathFailover:
        ++res_.failovers;
        break;
      default:
        break;
    }
  }
  // Deliverable responses, any association (only ours exists).
  sctp::RecvInfo info;
  for (;;) {
    const std::ptrdiff_t n = c.sctp->recvmsg(scratch_, info);
    if (n <= 0) break;
    net::ByteReader r(std::span<const std::byte>(scratch_.data(),
                                                 static_cast<std::size_t>(n)));
    try {
      const std::uint32_t magic = r.u32();
      const std::uint64_t req_id = r.u64();
      if (magic == kRespMagic) complete_(c, req_id);
    } catch (const net::DecodeError&) {
    }
  }
}

void ServiceEngine::read_client_tcp_(Client& c) {
  if (c.tcp == nullptr || c.tcp->failed()) return;
  std::byte tmp[4096];
  for (;;) {
    const std::ptrdiff_t n = c.tcp->recv(tmp);
    if (n <= 0) break;
    c.inbuf.insert(c.inbuf.end(), tmp, tmp + n);
  }
  Frame f;
  while (take_frame(c.inbuf, f)) {
    if (f.magic == kRespMagic) complete_(c, f.req_id);
  }
}

void ServiceEngine::pump_client_(Client& c) {
  if (!c.connected) {
    if (!c.connecting && !c.pending.empty() && !c.reconnect_timer->armed()) {
      connect_client_(c);
    }
    return;
  }
  if (tcp_mode()) {
    while (!c.pending.empty()) {
      Request& req = c.pending.front();
      if (c.frame.empty()) {
        put_frame(c.frame, kReqMagic, req.id, req.size);
        c.write_off = 0;
      }
      const std::span<const std::byte> rest(c.frame.data() + c.write_off,
                                            c.frame.size() - c.write_off);
      const std::ptrdiff_t n = c.tcp->send(rest);
      if (n <= 0) return;  // buffer full or failing; retry on activity
      c.write_off += static_cast<std::size_t>(n);
      if (c.write_off < c.frame.size()) return;
      c.frame.clear();
      c.outstanding.push_back(req);
      c.pending.pop_front();
    }
  } else {
    while (!c.pending.empty()) {
      Request& req = c.pending.front();
      std::vector<std::byte> head;
      net::ByteWriter w(head);
      w.u32(kReqMagic);
      w.u64(req.id);
      w.u32(req.size);
      const std::uint16_t sid = static_cast<std::uint16_t>(
          req.id % params_.sctp.num_ostreams);
      const std::ptrdiff_t n = c.sctp->sendmsg_gather(
          c.assoc, sid, std::span<const std::byte>(head),
          std::span<const std::byte>(zero_body_.data(), req.size));
      if (n <= 0) return;  // flow control (kAgain) or dying association
      c.outstanding.push_back(req);
      c.pending.pop_front();
    }
  }
}

void ServiceEngine::fail_client_(Client& c) {
  c.connected = false;
  c.connecting = false;
  if (tcp_mode() && c.tcp != nullptr) {
    // Silence the dead socket (it stays owned by the stack); a late timer
    // on it must not tear down the replacement connection.
    c.tcp->set_activity_callback({});
    c.tcp->set_error_callback({});
    c.tcp = nullptr;
  }
  // Everything unanswered goes back to the front of the queue, original
  // issue timestamps intact: the retry cost lands in the latency tail.
  std::size_t requeued = c.outstanding.size();
  while (!c.outstanding.empty()) {
    c.pending.push_front(c.outstanding.back());
    c.outstanding.pop_back();
  }
  if (!c.frame.empty()) {
    c.frame.clear();  // half-written request restarts on the new socket
    c.write_off = 0;
  }
  res_.retried += requeued;
  if (c.pending.empty()) return;  // idle client reconnects lazily
  ++res_.reconnects;
  ++c.attempts;
  const sim::SimTime shift = std::min<unsigned>(c.attempts - 1, 8);
  const sim::SimTime backoff =
      std::min(params_.reconnect_backoff << shift,
               params_.reconnect_backoff_max);
  c.reconnect_timer->arm(backoff);
}

void ServiceEngine::complete_(Client& c, std::uint64_t req_id) {
  for (auto it = c.outstanding.begin(); it != c.outstanding.end(); ++it) {
    if (it->id != req_id) continue;
    const sim::SimTime now = sim_.now();
    samples_ms_.push_back(static_cast<double>(now - it->issue_time) / 1e6);
    ++res_.completed;
    last_event_ = now;
    // Order-sensitive FNV-1a fold over (req id, completion instant).
    const std::uint64_t words[2] = {req_id, static_cast<std::uint64_t>(now)};
    for (const std::uint64_t wd : words) {
      for (int i = 0; i < 8; ++i) {
        res_.digest ^= (wd >> (8 * i)) & 0xFF;
        res_.digest *= 1099511628211ull;
      }
    }
    c.outstanding.erase(it);
    maybe_finish_();
    return;
  }
  ++res_.duplicate_responses;  // answered twice across a retry
}

// ---------------------------------------------------------------------------
// Backend side
// ---------------------------------------------------------------------------

void ServiceEngine::accept_loop_(Backend& b) {
  while (tcp::TcpSocket* child = b.listener->accept()) {
    b.conns.emplace(child, TcpConn{});
    child->set_activity_callback([this, &b, child] {
      pump_conn_(b, child);
      flush_conn_(b, child);
    });
    child->set_error_callback([this, &b, child](const char*) {
      b.conns.erase(child);
    });
    pump_conn_(b, child);
  }
}

void ServiceEngine::pump_conn_(Backend& b, tcp::TcpSocket* s) {
  auto it = b.conns.find(s);
  if (it == b.conns.end()) return;
  TcpConn& conn = it->second;
  std::byte tmp[4096];
  for (;;) {
    const std::ptrdiff_t n = s->recv(tmp);
    if (n <= 0) break;
    conn.inbuf.insert(conn.inbuf.end(), tmp, tmp + n);
  }
  Frame f;
  while (take_frame(conn.inbuf, f)) {
    if (f.magic != kReqMagic) continue;
    const std::uint64_t req_id = f.req_id;
    sim_.schedule_after(params_.service_time, [this, &b, s, req_id] {
      serve_request_(b, s, 0, 0, req_id);
    });
  }
}

void ServiceEngine::flush_conn_(Backend& b, tcp::TcpSocket* s) {
  auto it = b.conns.find(s);
  if (it == b.conns.end()) return;
  TcpConn& conn = it->second;
  while (!conn.outbuf.empty()) {
    const std::ptrdiff_t n = s->send(conn.outbuf);
    if (n <= 0) return;
    conn.outbuf.erase(conn.outbuf.begin(),
                      conn.outbuf.begin() + static_cast<std::ptrdiff_t>(n));
  }
}

void ServiceEngine::serve_request_(Backend& b, tcp::TcpSocket* conn,
                                   sctp::AssocId assoc, std::uint16_t sid,
                                   std::uint64_t req_id) {
  ++b.served;
  if (tcp_mode()) {
    auto it = b.conns.find(conn);
    if (it == b.conns.end()) return;  // client reset while we computed
    put_frame(it->second.outbuf, kRespMagic, req_id,
              static_cast<std::uint32_t>(params_.response_size));
    flush_conn_(b, conn);
  } else {
    std::vector<std::byte> head;
    net::ByteWriter w(head);
    w.u32(kRespMagic);
    w.u64(req_id);
    w.u32(static_cast<std::uint32_t>(params_.response_size));
    const std::ptrdiff_t n = b.ssock->sendmsg_gather(
        assoc, sid, std::span<const std::byte>(head),
        std::span<const std::byte>(zero_body_.data(), params_.response_size));
    if (n == sctp::Association::kAgain) {
      b.outbox.emplace_back(assoc, req_id);  // retry when sndbuf drains
    }
    // kError: the association died; the client retries elsewhere.
  }
}

void ServiceEngine::pump_backend_sctp_(Backend& b) {
  while (auto n = b.ssock->poll_notification()) {
    (void)n;  // backend does not act on comm events; clients drive retry
  }
  sctp::RecvInfo info;
  for (;;) {
    const std::ptrdiff_t n = b.ssock->recvmsg(scratch_, info);
    if (n <= 0) break;
    try {
      net::ByteReader r(std::span<const std::byte>(
          scratch_.data(), static_cast<std::size_t>(n)));
      const std::uint32_t magic = r.u32();
      const std::uint64_t req_id = r.u64();
      if (magic != kReqMagic) continue;
      const sctp::AssocId assoc = info.assoc;
      const std::uint16_t sid = info.sid;
      sim_.schedule_after(params_.service_time,
                          [this, &b, assoc, sid, req_id] {
                            serve_request_(b, nullptr, assoc, sid, req_id);
                          });
    } catch (const net::DecodeError&) {
    }
  }
  // Flow-controlled responses: retry in arrival order.
  while (!b.outbox.empty()) {
    auto [assoc, req_id] = b.outbox.front();
    std::vector<std::byte> head;
    net::ByteWriter w(head);
    w.u32(kRespMagic);
    w.u64(req_id);
    w.u32(static_cast<std::uint32_t>(params_.response_size));
    const std::ptrdiff_t n = b.ssock->sendmsg_gather(
        assoc, 0, std::span<const std::byte>(head),
        std::span<const std::byte>(zero_body_.data(), params_.response_size));
    if (n == sctp::Association::kAgain) break;
    b.outbox.pop_front();  // sent, or dead association (drop)
  }
}

// ---------------------------------------------------------------------------
// Arrivals and termination
// ---------------------------------------------------------------------------

void ServiceEngine::issue_next_() {
  if (res_.issued >= params_.requests) return;
  Client& c = *clients_[rng_workload_.uniform_int(clients_.size())];
  Request req;
  req.id = next_req_id_++;
  const double raw = rng_workload_.lognormal(params_.size_mu,
                                             params_.size_sigma);
  req.size = static_cast<std::uint32_t>(std::min<double>(
      static_cast<double>(params_.size_max), std::max(32.0, raw)));
  req.issue_time = sim_.now();
  if (res_.issued == 0) first_arrival_ = req.issue_time;
  ++res_.issued;
  c.pending.push_back(req);
  pump_client_(c);
  if (res_.issued < params_.requests) {
    arrival_timer_->arm(static_cast<sim::SimTime>(
        rng_workload_.exponential(mean_gap_ns_)));
  }
}

void ServiceEngine::maybe_finish_() {
  if (done_) return;
  if (res_.issued == params_.requests &&
      res_.completed + res_.abandoned == res_.issued) {
    done_ = true;
  }
}

void ServiceEngine::finish_at_deadline_() {
  // Whatever has not completed is lost: the open-loop fleet's users gave
  // up. This is the "request loss" the chaos oracles assert on.
  res_.abandoned = res_.issued - res_.completed;
  done_ = true;
}

ServiceResult ServiceEngine::run() {
  if (params_.lb_probes) lb_->start_probes();
  arrival_timer_->arm(0);
  deadline_timer_->arm(params_.deadline);
  while (!done_) {
    if (!sim_.step()) break;  // queue drained (all timers stopped): done
  }
  lb_->stop();

  for (int b = bus_.poll(0); b >= 0; b = bus_.poll(0)) {
    res_.failure_bus_log.push_back(b);
  }
  const TailSummary t = tail_summary(samples_ms_);
  res_.p50_ms = t.p50;
  res_.p99_ms = t.p99;
  res_.p999_ms = t.p999;
  res_.mean_ms = t.mean;
  res_.max_ms = t.max;
  res_.runtime_seconds =
      static_cast<double>(last_event_ - first_arrival_) / 1e9;
  res_.lb = lb_->stats();
  return res_;
}

// ===========================================================================
// ServiceSim facade
// ===========================================================================

ServiceSim::ServiceSim(ServiceParams params)
    : engine_(std::make_unique<ServiceEngine>(std::move(params))) {}
ServiceSim::~ServiceSim() = default;

void ServiceSim::at(sim::SimTime t, std::function<void()> fn) {
  engine_->at(t, std::move(fn));
}
net::LoadBalancer& ServiceSim::lb() { return engine_->lb(); }
net::Cluster& ServiceSim::cluster() { return engine_->cluster(); }
unsigned ServiceSim::backend_host(unsigned b) const {
  return engine_->backend_host(b);
}
unsigned ServiceSim::lb_host() const { return engine_->lb_host(); }
ServiceResult ServiceSim::run() { return engine_->run(); }

ServiceResult run_service(const ServiceParams& params,
                          const std::function<void(ServiceSim&)>& pre_run) {
  ServiceSim sim(params);
  if (pre_run) pre_run(sim);
  return sim.run();
}

}  // namespace sctpmpi::apps
