// Protocol-aware packet trace recorder.
//
// PacketTrace implements net::PacketObserver: attached to a Cluster it sees
// every packet event (sent / queued / dropped-loss / dropped-queue /
// delivered) on every host and link, decodes the transport payload (TCP
// segment or SCTP packet) and keeps a structured in-memory log. Tests
// assert on the log to check protocol *mechanics* — which TSN was
// retransmitted, whether fast retransmit fired before the RTO, how many
// SACK blocks a segment carried — rather than only end-to-end timings.
//
// The text serialization (to_text) is stable and fully deterministic for a
// seeded simulation, which makes byte-identical golden-trace regression
// tests possible.
//
// This library sits above net/tcp/sctp (it decodes both wire formats), so
// it lives in its own CMake target, sctpmpi_trace; the net layer only
// knows the PacketObserver interface.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "net/cluster.hpp"
#include "net/observer.hpp"
#include "net/packet.hpp"
#include "sim/time.hpp"

namespace sctpmpi::trace {

struct TraceRecord {
  sim::SimTime time = 0;
  std::string point;  // "h0", "up0.0", "dn1.2"
  std::uint64_t uid = 0;
  net::IpProto proto = net::IpProto::kTcp;
  net::PacketVerdict verdict = net::PacketVerdict::kQueued;
  std::uint8_t flags = 0;       // net::kPktFlag* annotations
  std::size_t wire_bytes = 0;

  // Decoded transport summary.
  std::string kind;             // "SYN+ACK", "DATA", "DATA+SACK", "INIT"...
  std::uint32_t seq = 0;        // TCP sequence number / first DATA TSN
  std::uint32_t ack = 0;        // TCP ack / SACK cumulative TSN ack
  std::uint32_t data_bytes = 0; // transport payload bytes carried
  unsigned sack_blocks = 0;     // TCP SACK blocks / SCTP gap-ack blocks
  std::vector<std::uint32_t> tsns;  // all DATA TSNs bundled (SCTP)
  std::vector<std::uint16_t> sids;  // stream ids of those DATA chunks

  bool is_retransmit() const {
    return (flags & net::kPktFlagRetransmit) != 0;
  }
  bool is_corrupted() const {
    return (flags & net::kPktFlagCorrupted) != 0;
  }
  bool carries_data() const { return data_bytes > 0; }
  bool has_tsn(std::uint32_t tsn) const {
    for (std::uint32_t t : tsns)
      if (t == tsn) return true;
    return false;
  }
  /// Exact match against one "+"-separated token of `kind`, so "INIT"
  /// does not match an INIT-ACK packet.
  bool has_chunk(const char* name) const;

  /// One stable text line (no trailing newline).
  std::string to_line() const;
};

struct TraceSummary {
  std::uint64_t sent = 0;
  std::uint64_t queued = 0;
  std::uint64_t dropped_loss = 0;
  std::uint64_t dropped_queue = 0;
  std::uint64_t delivered = 0;
  std::uint64_t retransmit_packets = 0;  // rtx-flagged, counted at kSent
  std::uint64_t corrupted_packets = 0;   // corrupted, counted at kQueued
  std::uint64_t data_packets = 0;        // data-carrying, counted at kSent
};

class PacketTrace : public net::PacketObserver {
 public:
  using Filter = std::function<bool(const TraceRecord&)>;

  PacketTrace() = default;
  ~PacketTrace() override;

  /// Installs this trace on every link and host of `cluster`. The trace
  /// detaches automatically on destruction.
  void attach(net::Cluster& cluster);
  void detach();

  /// Records only events for which `f` returns true (e.g. uplinks only).
  /// Filtering at capture keeps golden traces small; pass nullptr to keep
  /// everything.
  void set_capture_filter(Filter f) { capture_ = std::move(f); }

  void on_packet(sim::SimTime now, const std::string& point,
                 const net::Packet& pkt, net::PacketVerdict verdict) override;

  void clear() { records_.clear(); }
  const std::vector<TraceRecord>& records() const { return records_; }

  /// All records satisfying `f`, in capture order.
  std::vector<const TraceRecord*> select(const Filter& f) const;
  std::size_t count(const Filter& f) const;
  /// First record satisfying `f`, or nullptr.
  const TraceRecord* first(const Filter& f) const;
  /// Last record satisfying `f`, or nullptr.
  const TraceRecord* last(const Filter& f) const;

  TraceSummary summary() const;

  /// Stable text serialization, one line per record. Deterministic for a
  /// seeded run: suitable for golden-trace comparisons.
  std::string to_text() const;
  void write(std::ostream& os) const;

 private:
  net::Cluster* attached_ = nullptr;
  Filter capture_;
  std::vector<TraceRecord> records_;
};

/// Decodes the transport summary fields (kind/seq/ack/data_bytes/...) of
/// `pkt` into `rec`. Exposed for tests that build predicates over raw
/// packets (e.g. fault-injection matchers keyed on TSN).
void annotate(const net::Packet& pkt, TraceRecord& rec);

/// Convenience matchers for FaultInjector predicates.
/// True if the packet is a TCP segment carrying payload bytes.
bool is_tcp_data(const net::Packet& pkt);
/// True if the packet is an SCTP packet bundling at least one DATA chunk.
bool is_sctp_data(const net::Packet& pkt);
/// True if the packet bundles a DATA chunk with the given TSN.
bool has_sctp_tsn(const net::Packet& pkt, std::uint32_t tsn);
/// True if the packet contains an SCTP chunk of the given type name
/// ("INIT", "SACK", ...), matching the trace kind vocabulary.
bool has_sctp_chunk(const net::Packet& pkt, const char* name);

}  // namespace sctpmpi::trace
