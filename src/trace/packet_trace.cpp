#include "trace/packet_trace.hpp"

#include <cinttypes>
#include <cstdio>
#include <ostream>
#include <sstream>
#include <utility>

#include "net/bytes.hpp"
#include "sctp/chunk.hpp"
#include "tcp/wire.hpp"

namespace sctpmpi::trace {

namespace {

const char* chunk_name(sctp::ChunkType t) {
  using sctp::ChunkType;
  switch (t) {
    case ChunkType::kData: return "DATA";
    case ChunkType::kInit: return "INIT";
    case ChunkType::kInitAck: return "INIT-ACK";
    case ChunkType::kSack: return "SACK";
    case ChunkType::kHeartbeat: return "HEARTBEAT";
    case ChunkType::kHeartbeatAck: return "HEARTBEAT-ACK";
    case ChunkType::kAbort: return "ABORT";
    case ChunkType::kShutdown: return "SHUTDOWN";
    case ChunkType::kShutdownAck: return "SHUTDOWN-ACK";
    case ChunkType::kError: return "ERROR";
    case ChunkType::kCookieEcho: return "COOKIE-ECHO";
    case ChunkType::kCookieAck: return "COOKIE-ACK";
    case ChunkType::kShutdownComplete: return "SHUTDOWN-COMPLETE";
  }
  return "?";
}

void annotate_tcp(const net::Packet& pkt, TraceRecord& rec) {
  tcp::Segment seg;
  try {
    seg = tcp::Segment::decode(pkt.payload);
  } catch (...) {
    rec.kind = "RAW";
    return;
  }
  std::string kind;
  auto add = [&kind](const char* part) {
    if (!kind.empty()) kind += '+';
    kind += part;
  };
  if (seg.syn) add("SYN");
  if (seg.fin) add("FIN");
  if (seg.rst) add("RST");
  if (!seg.payload.empty()) add("DATA");
  if (kind.empty() && seg.ack_flag) kind = "ACK";
  if (!seg.sacks.empty()) add("SACK");
  rec.kind = std::move(kind);
  rec.seq = seg.seq;
  rec.ack = seg.ack_flag ? seg.ack : 0;
  rec.data_bytes = static_cast<std::uint32_t>(seg.payload.size());
  rec.sack_blocks = static_cast<unsigned>(seg.sacks.size());
}

void annotate_sctp(const net::Packet& pkt, TraceRecord& rec) {
  std::optional<sctp::SctpPacket> parsed;
  try {
    parsed = sctp::SctpPacket::decode(pkt.payload, /*verify_crc=*/false);
  } catch (...) {
    rec.kind = "RAW";
    return;
  }
  if (!parsed) {
    rec.kind = "RAW";
    return;
  }
  std::string kind;
  bool first_data = true;
  for (const auto& c : parsed->chunks) {
    if (!kind.empty()) kind += '+';
    kind += chunk_name(c.type);
    if (const auto* d = std::get_if<sctp::DataChunk>(&c.body)) {
      if (first_data) {
        rec.seq = d->tsn;
        first_data = false;
      }
      rec.tsns.push_back(d->tsn);
      rec.sids.push_back(d->sid);
      rec.data_bytes += static_cast<std::uint32_t>(d->payload.size());
    } else if (const auto* s = std::get_if<sctp::SackChunk>(&c.body)) {
      rec.ack = s->cum_tsn_ack;
      rec.sack_blocks = static_cast<unsigned>(s->gaps.size());
    }
  }
  rec.kind = std::move(kind);
}

}  // namespace

void annotate(const net::Packet& pkt, TraceRecord& rec) {
  switch (pkt.proto) {
    case net::IpProto::kTcp:
      annotate_tcp(pkt, rec);
      break;
    case net::IpProto::kSctp:
      annotate_sctp(pkt, rec);
      break;
    case net::IpProto::kUdp:
      rec.kind = "UDP";
      rec.data_bytes = static_cast<std::uint32_t>(
          pkt.payload.size() > 8 ? pkt.payload.size() - 8 : 0);
      break;
  }
}

bool TraceRecord::has_chunk(const char* name) const {
  const std::string want(name);
  std::size_t pos = 0;
  while (pos <= kind.size()) {
    std::size_t end = kind.find('+', pos);
    if (end == std::string::npos) end = kind.size();
    if (kind.compare(pos, end - pos, want) == 0) return true;
    pos = end + 1;
  }
  return false;
}

std::string TraceRecord::to_line() const {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "t=%012" PRId64 " %-6s uid=%016" PRIx64
                " %-4s %-13s %-24s seq=%010u ack=%010u len=%u sb=%u "
                "wire=%zu fl=%u",
                static_cast<std::int64_t>(time), point.c_str(), uid,
                proto == net::IpProto::kTcp    ? "TCP"
                : proto == net::IpProto::kSctp ? "SCTP"
                                               : "UDP",
                net::to_string(verdict), kind.c_str(), seq, ack, data_bytes,
                sack_blocks, wire_bytes, flags);
  std::string line(buf);
  if (!tsns.empty()) {
    line += " tsn=";
    for (std::size_t i = 0; i < tsns.size(); ++i) {
      if (i > 0) line += ',';
      line += std::to_string(tsns[i]);
    }
    line += " sid=";
    for (std::size_t i = 0; i < sids.size(); ++i) {
      if (i > 0) line += ',';
      line += std::to_string(sids[i]);
    }
  }
  return line;
}

PacketTrace::~PacketTrace() { detach(); }

void PacketTrace::attach(net::Cluster& cluster) {
  cluster.set_observer(this);
  attached_ = &cluster;
}

void PacketTrace::detach() {
  if (attached_ != nullptr) {
    attached_->set_observer(nullptr);
    attached_ = nullptr;
  }
}

void PacketTrace::on_packet(sim::SimTime now, const std::string& point,
                            const net::Packet& pkt,
                            net::PacketVerdict verdict) {
  TraceRecord rec;
  rec.time = now;
  rec.point = point;
  rec.uid = pkt.uid;
  rec.proto = pkt.proto;
  rec.verdict = verdict;
  rec.flags = pkt.flags;
  rec.wire_bytes = pkt.wire_size();
  annotate(pkt, rec);
  if (capture_ && !capture_(rec)) return;
  records_.push_back(std::move(rec));
}

std::vector<const TraceRecord*> PacketTrace::select(const Filter& f) const {
  std::vector<const TraceRecord*> out;
  for (const auto& r : records_) {
    if (f(r)) out.push_back(&r);
  }
  return out;
}

std::size_t PacketTrace::count(const Filter& f) const {
  std::size_t n = 0;
  for (const auto& r : records_) {
    if (f(r)) ++n;
  }
  return n;
}

const TraceRecord* PacketTrace::first(const Filter& f) const {
  for (const auto& r : records_) {
    if (f(r)) return &r;
  }
  return nullptr;
}

const TraceRecord* PacketTrace::last(const Filter& f) const {
  for (auto it = records_.rbegin(); it != records_.rend(); ++it) {
    if (f(*it)) return &*it;
  }
  return nullptr;
}

TraceSummary PacketTrace::summary() const {
  TraceSummary s;
  for (const auto& r : records_) {
    switch (r.verdict) {
      case net::PacketVerdict::kSent:
        ++s.sent;
        if (r.is_retransmit()) ++s.retransmit_packets;
        if (r.carries_data()) ++s.data_packets;
        break;
      case net::PacketVerdict::kQueued:
        ++s.queued;
        if (r.is_corrupted()) ++s.corrupted_packets;
        break;
      case net::PacketVerdict::kDroppedLoss: ++s.dropped_loss; break;
      case net::PacketVerdict::kDroppedQueue: ++s.dropped_queue; break;
      case net::PacketVerdict::kDelivered: ++s.delivered; break;
    }
  }
  return s;
}

std::string PacketTrace::to_text() const {
  std::string out;
  out.reserve(records_.size() * 96);
  for (const auto& r : records_) {
    out += r.to_line();
    out += '\n';
  }
  return out;
}

void PacketTrace::write(std::ostream& os) const { os << to_text(); }

bool is_tcp_data(const net::Packet& pkt) {
  if (pkt.proto != net::IpProto::kTcp) return false;
  TraceRecord rec;
  annotate(pkt, rec);
  return rec.data_bytes > 0;
}

bool is_sctp_data(const net::Packet& pkt) {
  if (pkt.proto != net::IpProto::kSctp) return false;
  TraceRecord rec;
  annotate(pkt, rec);
  return !rec.tsns.empty();
}

bool has_sctp_tsn(const net::Packet& pkt, std::uint32_t tsn) {
  if (pkt.proto != net::IpProto::kSctp) return false;
  TraceRecord rec;
  annotate(pkt, rec);
  return rec.has_tsn(tsn);
}

bool has_sctp_chunk(const net::Packet& pkt, const char* name) {
  if (pkt.proto != net::IpProto::kSctp) return false;
  TraceRecord rec;
  annotate(pkt, rec);
  return rec.has_chunk(name);
}

}  // namespace sctpmpi::trace
