file(REMOVE_RECURSE
  "CMakeFiles/extension_cmt.dir/extension_cmt.cpp.o"
  "CMakeFiles/extension_cmt.dir/extension_cmt.cpp.o.d"
  "extension_cmt"
  "extension_cmt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_cmt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
