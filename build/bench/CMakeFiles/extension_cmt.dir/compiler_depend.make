# Empty compiler generated dependencies file for extension_cmt.
# This may be replaced when dependencies are built.
