file(REMOVE_RECURSE
  "CMakeFiles/ablation_multihoming_failover.dir/ablation_multihoming_failover.cpp.o"
  "CMakeFiles/ablation_multihoming_failover.dir/ablation_multihoming_failover.cpp.o.d"
  "ablation_multihoming_failover"
  "ablation_multihoming_failover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_multihoming_failover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
