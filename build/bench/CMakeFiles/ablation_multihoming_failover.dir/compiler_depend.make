# Empty compiler generated dependencies file for ablation_multihoming_failover.
# This may be replaced when dependencies are built.
