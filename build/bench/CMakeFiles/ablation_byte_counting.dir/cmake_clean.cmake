file(REMOVE_RECURSE
  "CMakeFiles/ablation_byte_counting.dir/ablation_byte_counting.cpp.o"
  "CMakeFiles/ablation_byte_counting.dir/ablation_byte_counting.cpp.o.d"
  "ablation_byte_counting"
  "ablation_byte_counting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_byte_counting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
