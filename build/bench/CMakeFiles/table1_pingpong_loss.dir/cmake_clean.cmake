file(REMOVE_RECURSE
  "CMakeFiles/table1_pingpong_loss.dir/table1_pingpong_loss.cpp.o"
  "CMakeFiles/table1_pingpong_loss.dir/table1_pingpong_loss.cpp.o.d"
  "table1_pingpong_loss"
  "table1_pingpong_loss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_pingpong_loss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
