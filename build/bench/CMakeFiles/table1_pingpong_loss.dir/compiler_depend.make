# Empty compiler generated dependencies file for table1_pingpong_loss.
# This may be replaced when dependencies are built.
