# Empty compiler generated dependencies file for fig11_farm_fanout10.
# This may be replaced when dependencies are built.
