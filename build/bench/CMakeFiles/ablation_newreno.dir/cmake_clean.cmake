file(REMOVE_RECURSE
  "CMakeFiles/ablation_newreno.dir/ablation_newreno.cpp.o"
  "CMakeFiles/ablation_newreno.dir/ablation_newreno.cpp.o.d"
  "ablation_newreno"
  "ablation_newreno.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_newreno.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
