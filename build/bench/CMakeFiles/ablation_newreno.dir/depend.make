# Empty dependencies file for ablation_newreno.
# This may be replaced when dependencies are built.
