# Empty compiler generated dependencies file for ablation_crc32c.
# This may be replaced when dependencies are built.
