file(REMOVE_RECURSE
  "CMakeFiles/ablation_crc32c.dir/ablation_crc32c.cpp.o"
  "CMakeFiles/ablation_crc32c.dir/ablation_crc32c.cpp.o.d"
  "ablation_crc32c"
  "ablation_crc32c.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_crc32c.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
