
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig8_pingpong_throughput.cpp" "bench/CMakeFiles/fig8_pingpong_throughput.dir/fig8_pingpong_throughput.cpp.o" "gcc" "bench/CMakeFiles/fig8_pingpong_throughput.dir/fig8_pingpong_throughput.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/sctpmpi_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/sctpmpi_core.dir/DependInfo.cmake"
  "/root/repo/build/src/tcp/CMakeFiles/sctpmpi_tcp.dir/DependInfo.cmake"
  "/root/repo/build/src/sctp/CMakeFiles/sctpmpi_sctp.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/sctpmpi_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sctpmpi_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
