file(REMOVE_RECURSE
  "CMakeFiles/ablation_race_options.dir/ablation_race_options.cpp.o"
  "CMakeFiles/ablation_race_options.dir/ablation_race_options.cpp.o.d"
  "ablation_race_options"
  "ablation_race_options.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_race_options.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
