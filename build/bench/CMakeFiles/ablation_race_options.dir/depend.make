# Empty dependencies file for ablation_race_options.
# This may be replaced when dependencies are built.
