file(REMOVE_RECURSE
  "CMakeFiles/fig12_hol_blocking.dir/fig12_hol_blocking.cpp.o"
  "CMakeFiles/fig12_hol_blocking.dir/fig12_hol_blocking.cpp.o.d"
  "fig12_hol_blocking"
  "fig12_hol_blocking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_hol_blocking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
