# Empty dependencies file for fig12_hol_blocking.
# This may be replaced when dependencies are built.
