file(REMOVE_RECURSE
  "CMakeFiles/ablation_stream_pool.dir/ablation_stream_pool.cpp.o"
  "CMakeFiles/ablation_stream_pool.dir/ablation_stream_pool.cpp.o.d"
  "ablation_stream_pool"
  "ablation_stream_pool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_stream_pool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
