# Empty dependencies file for fig9_nas_benchmarks.
# This may be replaced when dependencies are built.
