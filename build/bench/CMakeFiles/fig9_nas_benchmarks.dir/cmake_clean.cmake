file(REMOVE_RECURSE
  "CMakeFiles/fig9_nas_benchmarks.dir/fig9_nas_benchmarks.cpp.o"
  "CMakeFiles/fig9_nas_benchmarks.dir/fig9_nas_benchmarks.cpp.o.d"
  "fig9_nas_benchmarks"
  "fig9_nas_benchmarks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_nas_benchmarks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
