file(REMOVE_RECURSE
  "CMakeFiles/ablation_socket_buffers.dir/ablation_socket_buffers.cpp.o"
  "CMakeFiles/ablation_socket_buffers.dir/ablation_socket_buffers.cpp.o.d"
  "ablation_socket_buffers"
  "ablation_socket_buffers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_socket_buffers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
