# Empty dependencies file for ablation_socket_buffers.
# This may be replaced when dependencies are built.
