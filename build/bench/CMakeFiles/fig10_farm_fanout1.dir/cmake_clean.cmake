file(REMOVE_RECURSE
  "CMakeFiles/fig10_farm_fanout1.dir/fig10_farm_fanout1.cpp.o"
  "CMakeFiles/fig10_farm_fanout1.dir/fig10_farm_fanout1.cpp.o.d"
  "fig10_farm_fanout1"
  "fig10_farm_fanout1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_farm_fanout1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
