# Empty dependencies file for fig10_farm_fanout1.
# This may be replaced when dependencies are built.
