file(REMOVE_RECURSE
  "CMakeFiles/test_tcp.dir/tcp/test_socket.cpp.o"
  "CMakeFiles/test_tcp.dir/tcp/test_socket.cpp.o.d"
  "CMakeFiles/test_tcp.dir/tcp/test_wire.cpp.o"
  "CMakeFiles/test_tcp.dir/tcp/test_wire.cpp.o.d"
  "test_tcp"
  "test_tcp.pdb"
  "test_tcp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
