file(REMOVE_RECURSE
  "CMakeFiles/test_sctp.dir/sctp/test_bundling.cpp.o"
  "CMakeFiles/test_sctp.dir/sctp/test_bundling.cpp.o.d"
  "CMakeFiles/test_sctp.dir/sctp/test_cmt.cpp.o"
  "CMakeFiles/test_sctp.dir/sctp/test_cmt.cpp.o.d"
  "CMakeFiles/test_sctp.dir/sctp/test_multihoming.cpp.o"
  "CMakeFiles/test_sctp.dir/sctp/test_multihoming.cpp.o.d"
  "CMakeFiles/test_sctp.dir/sctp/test_socket.cpp.o"
  "CMakeFiles/test_sctp.dir/sctp/test_socket.cpp.o.d"
  "CMakeFiles/test_sctp.dir/sctp/test_units.cpp.o"
  "CMakeFiles/test_sctp.dir/sctp/test_units.cpp.o.d"
  "test_sctp"
  "test_sctp.pdb"
  "test_sctp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sctp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
