# Empty compiler generated dependencies file for test_sctp.
# This may be replaced when dependencies are built.
