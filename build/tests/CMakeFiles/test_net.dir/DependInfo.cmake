
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/net/test_bytes.cpp" "tests/CMakeFiles/test_net.dir/net/test_bytes.cpp.o" "gcc" "tests/CMakeFiles/test_net.dir/net/test_bytes.cpp.o.d"
  "/root/repo/tests/net/test_cluster.cpp" "tests/CMakeFiles/test_net.dir/net/test_cluster.cpp.o" "gcc" "tests/CMakeFiles/test_net.dir/net/test_cluster.cpp.o.d"
  "/root/repo/tests/net/test_link.cpp" "tests/CMakeFiles/test_net.dir/net/test_link.cpp.o" "gcc" "tests/CMakeFiles/test_net.dir/net/test_link.cpp.o.d"
  "/root/repo/tests/net/test_udp.cpp" "tests/CMakeFiles/test_net.dir/net/test_udp.cpp.o" "gcc" "tests/CMakeFiles/test_net.dir/net/test_udp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/sctpmpi_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/sctpmpi_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
