# Empty dependencies file for sctpmpi_net.
# This may be replaced when dependencies are built.
