file(REMOVE_RECURSE
  "CMakeFiles/sctpmpi_net.dir/cluster.cpp.o"
  "CMakeFiles/sctpmpi_net.dir/cluster.cpp.o.d"
  "CMakeFiles/sctpmpi_net.dir/host.cpp.o"
  "CMakeFiles/sctpmpi_net.dir/host.cpp.o.d"
  "CMakeFiles/sctpmpi_net.dir/link.cpp.o"
  "CMakeFiles/sctpmpi_net.dir/link.cpp.o.d"
  "CMakeFiles/sctpmpi_net.dir/udp.cpp.o"
  "CMakeFiles/sctpmpi_net.dir/udp.cpp.o.d"
  "libsctpmpi_net.a"
  "libsctpmpi_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sctpmpi_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
