file(REMOVE_RECURSE
  "libsctpmpi_net.a"
)
