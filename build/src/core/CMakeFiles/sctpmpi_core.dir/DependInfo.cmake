
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/lamd.cpp" "src/core/CMakeFiles/sctpmpi_core.dir/lamd.cpp.o" "gcc" "src/core/CMakeFiles/sctpmpi_core.dir/lamd.cpp.o.d"
  "/root/repo/src/core/mpi.cpp" "src/core/CMakeFiles/sctpmpi_core.dir/mpi.cpp.o" "gcc" "src/core/CMakeFiles/sctpmpi_core.dir/mpi.cpp.o.d"
  "/root/repo/src/core/rpi_sctp.cpp" "src/core/CMakeFiles/sctpmpi_core.dir/rpi_sctp.cpp.o" "gcc" "src/core/CMakeFiles/sctpmpi_core.dir/rpi_sctp.cpp.o.d"
  "/root/repo/src/core/rpi_tcp.cpp" "src/core/CMakeFiles/sctpmpi_core.dir/rpi_tcp.cpp.o" "gcc" "src/core/CMakeFiles/sctpmpi_core.dir/rpi_tcp.cpp.o.d"
  "/root/repo/src/core/world.cpp" "src/core/CMakeFiles/sctpmpi_core.dir/world.cpp.o" "gcc" "src/core/CMakeFiles/sctpmpi_core.dir/world.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tcp/CMakeFiles/sctpmpi_tcp.dir/DependInfo.cmake"
  "/root/repo/build/src/sctp/CMakeFiles/sctpmpi_sctp.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/sctpmpi_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sctpmpi_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
