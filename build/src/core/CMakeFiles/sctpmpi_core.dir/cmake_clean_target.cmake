file(REMOVE_RECURSE
  "libsctpmpi_core.a"
)
