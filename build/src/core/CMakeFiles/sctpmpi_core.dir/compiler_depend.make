# Empty compiler generated dependencies file for sctpmpi_core.
# This may be replaced when dependencies are built.
