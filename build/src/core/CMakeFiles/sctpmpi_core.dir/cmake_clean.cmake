file(REMOVE_RECURSE
  "CMakeFiles/sctpmpi_core.dir/lamd.cpp.o"
  "CMakeFiles/sctpmpi_core.dir/lamd.cpp.o.d"
  "CMakeFiles/sctpmpi_core.dir/mpi.cpp.o"
  "CMakeFiles/sctpmpi_core.dir/mpi.cpp.o.d"
  "CMakeFiles/sctpmpi_core.dir/rpi_sctp.cpp.o"
  "CMakeFiles/sctpmpi_core.dir/rpi_sctp.cpp.o.d"
  "CMakeFiles/sctpmpi_core.dir/rpi_tcp.cpp.o"
  "CMakeFiles/sctpmpi_core.dir/rpi_tcp.cpp.o.d"
  "CMakeFiles/sctpmpi_core.dir/world.cpp.o"
  "CMakeFiles/sctpmpi_core.dir/world.cpp.o.d"
  "libsctpmpi_core.a"
  "libsctpmpi_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sctpmpi_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
