file(REMOVE_RECURSE
  "libsctpmpi_sim.a"
)
