# Empty dependencies file for sctpmpi_sim.
# This may be replaced when dependencies are built.
