file(REMOVE_RECURSE
  "CMakeFiles/sctpmpi_sim.dir/process.cpp.o"
  "CMakeFiles/sctpmpi_sim.dir/process.cpp.o.d"
  "CMakeFiles/sctpmpi_sim.dir/simulator.cpp.o"
  "CMakeFiles/sctpmpi_sim.dir/simulator.cpp.o.d"
  "libsctpmpi_sim.a"
  "libsctpmpi_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sctpmpi_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
