file(REMOVE_RECURSE
  "libsctpmpi_apps.a"
)
