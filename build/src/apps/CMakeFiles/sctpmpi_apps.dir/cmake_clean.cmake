file(REMOVE_RECURSE
  "CMakeFiles/sctpmpi_apps.dir/farm.cpp.o"
  "CMakeFiles/sctpmpi_apps.dir/farm.cpp.o.d"
  "CMakeFiles/sctpmpi_apps.dir/nas.cpp.o"
  "CMakeFiles/sctpmpi_apps.dir/nas.cpp.o.d"
  "CMakeFiles/sctpmpi_apps.dir/pingpong.cpp.o"
  "CMakeFiles/sctpmpi_apps.dir/pingpong.cpp.o.d"
  "libsctpmpi_apps.a"
  "libsctpmpi_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sctpmpi_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
