# Empty dependencies file for sctpmpi_apps.
# This may be replaced when dependencies are built.
