
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sctp/association.cpp" "src/sctp/CMakeFiles/sctpmpi_sctp.dir/association.cpp.o" "gcc" "src/sctp/CMakeFiles/sctpmpi_sctp.dir/association.cpp.o.d"
  "/root/repo/src/sctp/chunk.cpp" "src/sctp/CMakeFiles/sctpmpi_sctp.dir/chunk.cpp.o" "gcc" "src/sctp/CMakeFiles/sctpmpi_sctp.dir/chunk.cpp.o.d"
  "/root/repo/src/sctp/crc32c.cpp" "src/sctp/CMakeFiles/sctpmpi_sctp.dir/crc32c.cpp.o" "gcc" "src/sctp/CMakeFiles/sctpmpi_sctp.dir/crc32c.cpp.o.d"
  "/root/repo/src/sctp/socket.cpp" "src/sctp/CMakeFiles/sctpmpi_sctp.dir/socket.cpp.o" "gcc" "src/sctp/CMakeFiles/sctpmpi_sctp.dir/socket.cpp.o.d"
  "/root/repo/src/sctp/streams.cpp" "src/sctp/CMakeFiles/sctpmpi_sctp.dir/streams.cpp.o" "gcc" "src/sctp/CMakeFiles/sctpmpi_sctp.dir/streams.cpp.o.d"
  "/root/repo/src/sctp/tsn_map.cpp" "src/sctp/CMakeFiles/sctpmpi_sctp.dir/tsn_map.cpp.o" "gcc" "src/sctp/CMakeFiles/sctpmpi_sctp.dir/tsn_map.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/sctpmpi_net.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/sctpmpi_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
