# Empty dependencies file for sctpmpi_sctp.
# This may be replaced when dependencies are built.
