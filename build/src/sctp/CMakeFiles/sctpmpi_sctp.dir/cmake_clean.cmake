file(REMOVE_RECURSE
  "CMakeFiles/sctpmpi_sctp.dir/association.cpp.o"
  "CMakeFiles/sctpmpi_sctp.dir/association.cpp.o.d"
  "CMakeFiles/sctpmpi_sctp.dir/chunk.cpp.o"
  "CMakeFiles/sctpmpi_sctp.dir/chunk.cpp.o.d"
  "CMakeFiles/sctpmpi_sctp.dir/crc32c.cpp.o"
  "CMakeFiles/sctpmpi_sctp.dir/crc32c.cpp.o.d"
  "CMakeFiles/sctpmpi_sctp.dir/socket.cpp.o"
  "CMakeFiles/sctpmpi_sctp.dir/socket.cpp.o.d"
  "CMakeFiles/sctpmpi_sctp.dir/streams.cpp.o"
  "CMakeFiles/sctpmpi_sctp.dir/streams.cpp.o.d"
  "CMakeFiles/sctpmpi_sctp.dir/tsn_map.cpp.o"
  "CMakeFiles/sctpmpi_sctp.dir/tsn_map.cpp.o.d"
  "libsctpmpi_sctp.a"
  "libsctpmpi_sctp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sctpmpi_sctp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
