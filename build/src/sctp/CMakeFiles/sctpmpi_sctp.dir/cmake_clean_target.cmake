file(REMOVE_RECURSE
  "libsctpmpi_sctp.a"
)
