# Empty compiler generated dependencies file for sctpmpi_tcp.
# This may be replaced when dependencies are built.
