file(REMOVE_RECURSE
  "CMakeFiles/sctpmpi_tcp.dir/socket.cpp.o"
  "CMakeFiles/sctpmpi_tcp.dir/socket.cpp.o.d"
  "CMakeFiles/sctpmpi_tcp.dir/wire.cpp.o"
  "CMakeFiles/sctpmpi_tcp.dir/wire.cpp.o.d"
  "libsctpmpi_tcp.a"
  "libsctpmpi_tcp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sctpmpi_tcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
