file(REMOVE_RECURSE
  "libsctpmpi_tcp.a"
)
