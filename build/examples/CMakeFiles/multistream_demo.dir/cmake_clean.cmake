file(REMOVE_RECURSE
  "CMakeFiles/multistream_demo.dir/multistream_demo.cpp.o"
  "CMakeFiles/multistream_demo.dir/multistream_demo.cpp.o.d"
  "multistream_demo"
  "multistream_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multistream_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
