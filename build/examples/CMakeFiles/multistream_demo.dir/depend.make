# Empty dependencies file for multistream_demo.
# This may be replaced when dependencies are built.
