# Empty dependencies file for farm_demo.
# This may be replaced when dependencies are built.
