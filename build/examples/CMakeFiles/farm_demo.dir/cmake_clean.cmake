file(REMOVE_RECURSE
  "CMakeFiles/farm_demo.dir/farm_demo.cpp.o"
  "CMakeFiles/farm_demo.dir/farm_demo.cpp.o.d"
  "farm_demo"
  "farm_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/farm_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
